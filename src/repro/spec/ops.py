"""Structural operations on specifications.

These are the standard process-algebraic spec transformers the rest of the
library builds on: event renaming, hiding (externals become internal λ
steps), alphabet extension/restriction, unreachable-state pruning, and
canonical relabeling.  All return new immutable specifications.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..errors import SpecError
from ..events import Alphabet, Event
from .graph import reachable_states
from .spec import Specification, State


def rename_events(
    spec: Specification, mapping: Mapping[Event, Event], *, name: str | None = None
) -> Specification:
    """Relabel events.  Events absent from *mapping* are kept unchanged.

    The mapping must not merge two distinct alphabet events into one (that
    would change synchronization behaviour silently); use :func:`hide_events`
    or explicit modeling for that.
    """
    def ren(e: Event) -> Event:
        return mapping.get(e, e)

    new_alphabet = [ren(e) for e in spec.alphabet.sorted()]
    if len(set(new_alphabet)) != len(new_alphabet):
        raise SpecError(
            "event renaming merges distinct events", spec_name=spec.name
        )
    return Specification(
        name if name is not None else spec.name,
        spec.states,
        new_alphabet,
        ((s, ren(e), s2) for s, e, s2 in spec.external),
        spec.internal,
        spec.initial,
    )


def hide_events(
    spec: Specification, events: Iterable[Event], *, name: str | None = None
) -> Specification:
    """Hide *events*: their transitions become internal λ steps.

    This is the unary abstraction operator (CSP's ``\\``); the paper's
    composition performs the same hiding implicitly for synchronized events.
    Hidden events leave the alphabet.
    """
    hidden = Alphabet(events)
    unknown = hidden - spec.alphabet
    if unknown:
        raise SpecError(
            f"cannot hide events not in alphabet: {unknown.sorted()}",
            spec_name=spec.name,
        )
    external = []
    internal = list(spec.internal)
    for s, e, s2 in spec.external:
        if e in hidden:
            if s != s2:
                internal.append((s, s2))
        else:
            external.append((s, e, s2))
    return Specification(
        name if name is not None else f"({spec.name} \\ {sorted(hidden)})",
        spec.states,
        spec.alphabet - hidden,
        external,
        internal,
        spec.initial,
    )


def extend_alphabet(
    spec: Specification, extra: Iterable[Event]
) -> Specification:
    """Add events to the alphabet without adding transitions.

    The spec then *refuses* those events in every state — needed when
    aligning interfaces for satisfaction checks.
    """
    return Specification(
        spec.name,
        spec.states,
        spec.alphabet | Alphabet(extra),
        spec.external,
        spec.internal,
        spec.initial,
    )


def restrict_events(
    spec: Specification, keep: Iterable[Event], *, name: str | None = None
) -> Specification:
    """Remove all transitions on events outside *keep* and shrink the alphabet.

    Unlike hiding, dropped transitions are erased, not internalized: this is
    the "forbid those interactions" operator.
    """
    kept = Alphabet(keep) & spec.alphabet
    return Specification(
        name if name is not None else spec.name,
        spec.states,
        kept,
        ((s, e, s2) for s, e, s2 in spec.external if e in kept),
        spec.internal,
        spec.initial,
    )


def prune_unreachable(spec: Specification) -> Specification:
    """Drop states unreachable from the initial state (via ``T ∪ λ``)."""
    keep = reachable_states(spec)
    if keep == spec.states:
        return spec
    return Specification(
        spec.name,
        keep,
        spec.alphabet,
        ((s, e, s2) for s, e, s2 in spec.external if s in keep and s2 in keep),
        ((s, s2) for s, s2 in spec.internal if s in keep and s2 in keep),
        spec.initial,
    )


def relabel_canonical(spec: Specification) -> Specification:
    """Renumber states 0..n-1 in BFS order from the initial state.

    Two isomorphic reachable specs relabel to structurally equal specs when
    their deterministic BFS orders agree, which makes golden tests readable.
    """
    return spec.map_states(None)


def remove_states(
    spec: Specification, doomed: Iterable[State], *, name: str | None = None
) -> Specification:
    """Remove *doomed* states and their incident transitions.

    Removing the initial state is an error (the result would not be a
    specification); callers that need "the empty quotient" represent it
    explicitly (see :mod:`repro.quotient.types`).
    """
    doomed_set = set(doomed)
    if spec.initial in doomed_set:
        raise SpecError(
            "cannot remove the initial state", spec_name=spec.name
        )
    keep = spec.states - doomed_set
    return Specification(
        name if name is not None else spec.name,
        keep,
        spec.alphabet,
        ((s, e, s2) for s, e, s2 in spec.external if s in keep and s2 in keep),
        ((s, s2) for s, s2 in spec.internal if s in keep and s2 in keep),
        spec.initial,
    )


def complete(
    spec: Specification, *, sink_label: State = "__sink__"
) -> Specification:
    """Make the spec totally defined by routing missing events to a sink.

    Every state gets a transition for every alphabet event; missing ones go
    to a fresh absorbing *sink_label* state (which self-loops on everything).
    Useful for complementation-style constructions and for modeling
    "anything else is an error" machines.
    """
    if sink_label in spec.states:
        raise SpecError(
            f"sink label {sink_label!r} collides with an existing state",
            spec_name=spec.name,
        )
    external = list(spec.external)
    needs_sink = False
    for s in spec.states:
        missing = spec.alphabet - spec.enabled(s)
        for e in missing.sorted():
            external.append((s, e, sink_label))
            needs_sink = True
    states = set(spec.states)
    if needs_sink or spec.alphabet:
        states.add(sink_label)
        for e in spec.alphabet.sorted():
            external.append((sink_label, e, sink_label))
    return Specification(
        spec.name, states, spec.alphabet, external, spec.internal, spec.initial
    )
