"""Graph-theoretic primitives over specifications.

Every phase of the paper's theory reduces to a handful of graph questions
about the internal-transition relation ``λ`` and the external relation ``T``:

* ``λ*`` — reflexive-transitive closure of ``λ`` (Section 3);
* **sink sets** — cycles of internal transitions with no internal transition
  leaving the cycle; under the fairness assumption a system dwelling in a
  sink set behaves like a single state whose enabled events are the union
  over the cycle (Fig. 4).  ``sink.s ≡ (∀s' : s λ* s' ⇒ s' λ* s)``;
* ``τ.s`` — external events enabled in ``s``;
* ``τ*.s`` — external events enabled in any state internally reachable from
  ``s``.

All functions are pure and deterministic.  Whole-spec variants return dicts
keyed by state and are computed in linear(ish) time via Tarjan's SCC
algorithm and condensation-DAG propagation, since the satisfaction and
quotient phases query every state.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .. import obs
from ..events import Alphabet, Event
from .spec import Specification, State, _state_sort_key


# ----------------------------------------------------------------------
# λ* closure
# ----------------------------------------------------------------------
def lambda_closure_of(spec: Specification, state: State) -> frozenset[State]:
    """``{s' : state λ* s'}`` — forward internal closure of one state."""
    seen = {state}
    stack = [state]
    while stack:
        s = stack.pop()
        for s2 in spec.internal_successors(s):
            if s2 not in seen:
                seen.add(s2)
                stack.append(s2)
    return frozenset(seen)


def close_under_lambda(spec: Specification, states: Iterable[State]) -> frozenset[State]:
    """Forward internal closure of a *set* of states."""
    seen = set(states)
    stack = list(seen)
    while stack:
        s = stack.pop()
        for s2 in spec.internal_successors(s):
            if s2 not in seen:
                seen.add(s2)
                stack.append(s2)
    return frozenset(seen)


def lambda_closure(spec: Specification) -> dict[State, frozenset[State]]:
    """``λ*`` for every state, as a dict ``s -> {s' : s λ* s'}``.

    Computed via the condensation of the λ-graph so shared suffixes are not
    re-explored per state.  With the kernel enabled the closure comes from
    the compiled spec's memoized bitmask analysis (value-identical).
    """
    obs.add("graph.lambda_closure_runs", 1)
    from .compiled import compiled, kernel_enabled

    if kernel_enabled():
        cs = compiled(spec)
        masks = cs.closure_masks()
        decoded: dict[int, frozenset[State]] = {}
        result: dict[State, frozenset[State]] = {}
        for i, s in enumerate(cs.states):
            mask = masks[i]
            members = decoded.get(mask)
            if members is None:
                members = cs.decode_state_mask(mask)
                decoded[mask] = members
            result[s] = members
        return result
    sccs, scc_of = internal_sccs(spec)
    # closure over SCC DAG, in reverse topological order
    order = _topological_scc_order(spec, sccs, scc_of)
    scc_closure: list[set[int]] = [set() for _ in sccs]
    for idx in reversed(order):
        result = {idx}
        for s in sccs[idx]:
            for s2 in spec.internal_successors(s):
                j = scc_of[s2]
                if j != idx:
                    result |= scc_closure[j]
        scc_closure[idx] = result
    closure: dict[State, frozenset[State]] = {}
    scc_states: list[frozenset[State]] = [frozenset(c) for c in sccs]
    expanded: list[frozenset[State]] = []
    for idx in range(len(sccs)):
        members: set[State] = set()
        for j in scc_closure[idx]:
            members |= scc_states[j]
        expanded.append(frozenset(members))
    for s in spec.states:
        closure[s] = expanded[scc_of[s]]
    return closure


# ----------------------------------------------------------------------
# strongly connected components of the λ graph (Tarjan, iterative)
# ----------------------------------------------------------------------
def internal_sccs(
    spec: Specification,
) -> tuple[list[list[State]], dict[State, int]]:
    """Tarjan SCCs of the internal-transition graph.

    Returns ``(components, index_of)`` where ``components[i]`` lists the
    member states of SCC ``i`` and ``index_of[s]`` maps each state to its
    component index.  Deterministic: states are visited in sorted order.
    """
    index_counter = 0
    index: dict[State, int] = {}
    lowlink: dict[State, int] = {}
    on_stack: set[State] = set()
    stack: list[State] = []
    components: list[list[State]] = []
    scc_of: dict[State, int] = {}

    ordered_states = sorted(spec.states, key=_state_sort_key)

    for root in ordered_states:
        if root in index:
            continue
        # iterative Tarjan with explicit work stack of (state, iterator)
        work = [(root, iter(sorted(spec.internal_successors(root), key=_state_sort_key)))]
        index[root] = lowlink[root] = index_counter
        index_counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            state, succ_iter = work[-1]
            advanced = False
            for s2 in succ_iter:
                if s2 not in index:
                    index[s2] = lowlink[s2] = index_counter
                    index_counter += 1
                    stack.append(s2)
                    on_stack.add(s2)
                    work.append(
                        (s2, iter(sorted(spec.internal_successors(s2), key=_state_sort_key)))
                    )
                    advanced = True
                    break
                if s2 in on_stack:
                    lowlink[state] = min(lowlink[state], index[s2])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[state])
            if lowlink[state] == index[state]:
                component: list[State] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == state:
                        break
                comp_idx = len(components)
                components.append(component)
                for member in component:
                    scc_of[member] = comp_idx
    obs.add("graph.scc_runs", 1)
    obs.add("graph.scc_components", len(components))
    return components, scc_of


def _topological_scc_order(
    spec: Specification,
    sccs: list[list[State]],
    scc_of: dict[State, int],
) -> list[int]:
    """SCC indices in topological order of the condensation DAG.

    Tarjan emits SCCs in *reverse* topological order, so this is just the
    reversal of the discovery order.
    """
    return list(range(len(sccs) - 1, -1, -1))


# ----------------------------------------------------------------------
# sink sets
# ----------------------------------------------------------------------
def sink_sets(spec: Specification) -> list[frozenset[State]]:
    """All sink sets of the specification, deterministically ordered.

    A sink set is a λ-SCC with no internal transition leaving it — the
    "cycle of internal transitions with no internal transitions leaving the
    cycle" of Section 3 (a single state with no outgoing internal transition
    is the trivial case).
    """
    sccs, scc_of = internal_sccs(spec)
    sinks: list[frozenset[State]] = []
    for idx, component in enumerate(sccs):
        leaves = any(
            scc_of[s2] != idx
            for s in component
            for s2 in spec.internal_successors(s)
        )
        if not leaves:
            sinks.append(frozenset(component))
    sinks.sort(key=lambda c: sorted(map(_state_sort_key, c)))
    return sinks


def sink_states(spec: Specification) -> frozenset[State]:
    """``{s : sink.s}`` — all states belonging to some sink set."""
    return frozenset(s for component in sink_sets(spec) for s in component)


def is_sink(spec: Specification, state: State) -> bool:
    """The predicate ``sink.s ≡ (∀s' : s λ* s' ⇒ s' λ* s)``."""
    forward = lambda_closure_of(spec, state)
    return all(state in lambda_closure_of(spec, s2) for s2 in forward)


def reachable_sink_sets(
    spec: Specification, state: State
) -> list[frozenset[State]]:
    """Sink sets reachable from *state* via ``λ*`` (deterministic order).

    Used by the progress predicate: ``prog.a.b`` quantifies over the sink
    sets internally reachable from ``a``.
    """
    forward = lambda_closure_of(spec, state)
    return [sink for sink in sink_sets(spec) if sink & forward]


# ----------------------------------------------------------------------
# τ and τ*
# ----------------------------------------------------------------------
def tau(spec: Specification, state: State) -> Alphabet:
    """``τ.s`` — external events enabled in *state* (alias of ``enabled``)."""
    return spec.enabled(state)


def tau_star_of(spec: Specification, state: State) -> Alphabet:
    """``τ*.s`` — events enabled in any state internally reachable from *state*."""
    events: set[Event] = set()
    for s2 in lambda_closure_of(spec, state):
        events |= spec.enabled(s2)
    return Alphabet(events)


def tau_star(spec: Specification) -> dict[State, Alphabet]:
    """``τ*`` for every state at once (condensation-DAG propagation)."""
    obs.add("graph.tau_star_runs", 1)
    from .compiled import compiled, kernel_enabled

    if kernel_enabled():
        cs = compiled(spec)
        masks = cs.tau_star_masks()
        decoded: dict[int, Alphabet] = {}
        result: dict[State, Alphabet] = {}
        for i, s in enumerate(cs.states):
            mask = masks[i]
            events = decoded.get(mask)
            if events is None:
                events = cs.decode_event_mask(mask)
                decoded[mask] = events
            result[s] = events
        return result
    sccs, scc_of = internal_sccs(spec)
    order = _topological_scc_order(spec, sccs, scc_of)
    scc_events: list[set[Event]] = [set() for _ in sccs]
    for idx in reversed(order):
        events: set[Event] = set()
        for s in sccs[idx]:
            events |= spec.enabled(s)
            for s2 in spec.internal_successors(s):
                j = scc_of[s2]
                if j != idx:
                    events |= scc_events[j]
        scc_events[idx] = events
    return {s: Alphabet(scc_events[scc_of[s]]) for s in spec.states}


def sink_acceptance_sets(spec: Specification, state: State) -> list[Alphabet]:
    """Acceptance sets of the sink sets internally reachable from *state*.

    Each sink set contributes the union of events enabled anywhere on its
    cycle (``τ*`` of any member).  This is the menu of "what the system may
    end up offering" that the progress definition quantifies over.
    """
    result = []
    for sink in reachable_sink_sets(spec, state):
        events: set[Event] = set()
        for s in sink:
            events |= spec.enabled(s)
        result.append(Alphabet(events))
    return result


# ----------------------------------------------------------------------
# reachability over the full transition structure
# ----------------------------------------------------------------------
def reachable_states(spec: Specification, origin: State | None = None) -> frozenset[State]:
    """States reachable from *origin* (default: initial) via ``T ∪ λ``."""
    from .compiled import compiled, kernel_enabled

    if kernel_enabled():
        comp = compiled(spec)
        start_id = None if origin is None else comp.index[origin]
        return comp.decode_state_mask(comp.reachable_mask(start_id))
    start = spec.initial if origin is None else origin
    seen = {start}
    stack = [start]
    while stack:
        s = stack.pop()
        nexts: set[State] = set(spec.internal_successors(s))
        for e in spec.enabled(s):
            nexts |= spec.successors(s, e)
        for s2 in nexts:
            if s2 not in seen:
                seen.add(s2)
                stack.append(s2)
    return frozenset(seen)


def find_path(
    spec: Specification,
    goal: Callable[[State], bool],
    origin: State | None = None,
) -> list[Event | None] | None:
    """Shortest path (BFS) from *origin* to a state satisfying *goal*.

    Returns the edge labels along the path — an event name for an external
    step, ``None`` for an internal step — or ``None`` if no such state is
    reachable.  Deterministic tie-breaking.
    """
    start = spec.initial if origin is None else origin
    if goal(start):
        return []
    parent: dict[State, tuple[State, Event | None]] = {}
    seen = {start}
    frontier = [start]
    while frontier:
        next_frontier: list[State] = []
        for s in frontier:
            steps: list[tuple[Event | None, State]] = []
            for e in sorted(spec.enabled(s)):
                steps.extend((e, s2) for s2 in sorted(spec.successors(s, e), key=_state_sort_key))
            steps.extend((None, s2) for s2 in sorted(spec.internal_successors(s), key=_state_sort_key))
            for label, s2 in steps:
                if s2 in seen:
                    continue
                seen.add(s2)
                parent[s2] = (s, label)
                if goal(s2):
                    path: list[Event | None] = []
                    cursor = s2
                    while cursor != start:
                        prev, lab = parent[cursor]
                        path.append(lab)
                        cursor = prev
                    path.reverse()
                    return path
                next_frontier.append(s2)
        frontier = next_frontier
    return None
