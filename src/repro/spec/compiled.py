"""The compiled integer-indexed kernel behind the hot product-graph loops.

Every phase of the paper's algorithm — composition (Section 3), the safety
and progress phases of the quotient (Section 4), and independent
satisfaction checking — reduces to exploring a product graph whose nodes
pair states of two machines.  Running those explorations directly over
heterogeneous hashable state labels (nested tuples, frozensets) pays for
``repr()``-based sort keys, per-call ``frozenset`` allocations, and tuple
hashing on every step.

:class:`CompiledSpec` is built **once** per immutable
:class:`~repro.spec.spec.Specification` and re-expresses the machine over
dense integers:

* states are interned to ``0..n-1`` in the spec's canonical deterministic
  order (the cached ``_state_sort_key`` order), so ``sorted(ids)`` is
  exactly the ordering the labeled algorithms use;
* the alphabet is interned to event ids in lexicographic order, with each
  state's enabled set available as an int **bitmask**;
* external and internal adjacency are flat per-state tuples of target ids.

Whole-spec analyses (``λ*`` closures, ``τ*`` event masks, sink sets and
acceptance menus, the normal-form ``ψ`` table) are memoized on the compiled
object, and compiled objects themselves are memoized in a bounded LRU cache
keyed on the spec — valid because specifications are immutable, hashable
value objects.

The kernel is enabled by default; set ``REPRO_KERNEL=0`` (or use
:func:`use_kernel`) to force the reference labeled-state paths, which are
kept alongside the kernel for differential testing and benchmarking.  Both
paths produce *identical* results — the compiled exploration decodes back
to the same labeled specifications at the boundary (see
``tests/test_compiled_kernel.py`` and ``docs/performance.md``).
"""

from __future__ import annotations

import os
from array import array
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from .. import obs
from ..events import Alphabet, Event
from .spec import Specification, State

__all__ = [
    "CompiledSpec",
    "compiled",
    "compiled_cache_clear",
    "compiled_cache_info",
    "iter_bits",
    "kernel_enabled",
    "use_kernel",
]

#: Bound on the compiled-spec LRU cache.  Compilation is linear in the spec,
#: so the bound only matters to keep long-lived processes from pinning every
#: spec they ever touched.
CACHE_MAXSIZE = 128

_ENABLED = os.environ.get("REPRO_KERNEL", "1").lower() not in ("0", "false", "off")


def kernel_enabled() -> bool:
    """Whether hot paths should use the compiled kernel (default on)."""
    return _ENABLED


@contextmanager
def use_kernel(enabled: bool) -> Iterator[None]:
    """Temporarily force the kernel on or off (testing / benchmarking)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = previous


def iter_bits(mask: int) -> Iterator[int]:
    """Indices of the set bits of *mask*, ascending."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


class CompiledSpec:
    """An integer-indexed view of one immutable specification.

    Attributes
    ----------
    source:
        The specification this was compiled from (used only to decode and
        to delegate error reporting; equal specs compile interchangeably).
    states:
        Tuple of state labels; ``states[i]`` decodes id ``i``.  The order is
        the spec's deterministic sort order, so ascending ids reproduce
        every ``sorted(..., key=_state_sort_key)`` in the labeled paths.
    events:
        Tuple of event names in lexicographic order; ``events[j]`` decodes
        event id ``j`` and bit ``1 << j`` represents it in masks.
    ext_moves:
        ``ext_moves[i]`` is a tuple of ``(event_id, targets)`` pairs for the
        events enabled in state ``i``, event ids ascending, ``targets`` a
        tuple of target ids ascending.
    ext_by_eid:
        ``ext_by_eid[i]`` maps event id → target-id tuple (lookup form of
        ``ext_moves``; absent keys mean the event is not enabled).
    int_succ:
        ``int_succ[i]`` is the tuple of λ-successor ids, ascending.
    enabled_mask:
        ``enabled_mask[i]`` is the event bitmask of ``τ.s`` for state ``i``.
    """

    __slots__ = (
        "source",
        "states",
        "index",
        "events",
        "event_index",
        "initial",
        "n_states",
        "n_events",
        "ext_moves",
        "ext_by_eid",
        "int_succ",
        "enabled_mask",
        "_memo",
    )

    def __init__(self, spec: Specification) -> None:
        self.source = spec
        order = spec.sorted_by_rank(spec.states)
        self.states = tuple(order)
        self.index = {s: i for i, s in enumerate(order)}
        self.events = tuple(sorted(spec.alphabet))
        self.event_index = {e: j for j, e in enumerate(self.events)}
        self.initial = self.index[spec.initial]
        self.n_states = len(self.states)
        self.n_events = len(self.events)

        index = self.index
        event_index = self.event_index
        ext_moves: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
        ext_by_eid: list[dict[int, tuple[int, ...]]] = []
        int_succ: list[tuple[int, ...]] = []
        enabled_mask: list[int] = []
        for s in order:
            moves: list[tuple[int, tuple[int, ...]]] = []
            mask = 0
            for e in sorted(spec.enabled(s)):
                eid = event_index[e]
                targets = tuple(sorted(index[t] for t in spec.successors(s, e)))
                moves.append((eid, targets))
                mask |= 1 << eid
            ext_moves.append(tuple(moves))
            ext_by_eid.append({eid: targets for eid, targets in moves})
            int_succ.append(
                tuple(sorted(index[t] for t in spec.internal_successors(s)))
            )
            enabled_mask.append(mask)
        self.ext_moves = tuple(ext_moves)
        self.ext_by_eid = tuple(ext_by_eid)
        self.int_succ = tuple(int_succ)
        self.enabled_mask = tuple(enabled_mask)
        self._memo: dict[str, object] = {}

    # ------------------------------------------------------------------
    # decode helpers
    # ------------------------------------------------------------------
    def decode_event_mask(self, mask: int) -> Alphabet:
        """An event bitmask as an :class:`~repro.events.Alphabet`."""
        events = self.events
        return Alphabet(events[j] for j in iter_bits(mask))

    def decode_state_mask(self, mask: int) -> frozenset:
        """A state bitmask as a frozenset of state labels."""
        states = self.states
        return frozenset(states[i] for i in iter_bits(mask))

    def encode_events(self, events) -> int:
        """An iterable of event names as a bitmask."""
        event_index = self.event_index
        mask = 0
        for e in events:
            mask |= 1 << event_index[e]
        return mask

    def content_hash(self) -> str:
        """The sha256 fingerprint of the source specification (memoized).

        Delegates to :func:`repro.persist.spec_fingerprint` (canonical
        JSON form, name excluded), so a compiled spec's identity matches
        the one recorded in checkpoints.
        """
        cached = self._memo.get("content_hash")
        if cached is None:
            from ..persist.checkpoint import spec_fingerprint

            cached = spec_fingerprint(self.source)
            self._memo["content_hash"] = cached
        return cached  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # memoized whole-spec analyses
    # ------------------------------------------------------------------
    def _condensation(self) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """Tarjan SCCs of the λ graph over ids.

        Returns ``(scc_of, components)`` with components emitted in reverse
        topological order (every λ-successor component has a lower index).
        """
        cached = self._memo.get("condensation")
        if cached is not None:
            return cached  # type: ignore[return-value]
        int_succ = self.int_succ
        index: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        components: list[tuple[int, ...]] = []
        scc_of = [0] * self.n_states
        counter = 0
        for root in range(self.n_states):
            if root in index:
                continue
            work: list[tuple[int, Iterator[int]]] = [(root, iter(int_succ[root]))]
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, succ_iter = work[-1]
                advanced = False
                for nxt in succ_iter:
                    if nxt not in index:
                        index[nxt] = lowlink[nxt] = counter
                        counter += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(int_succ[nxt])))
                        advanced = True
                        break
                    if nxt in on_stack:
                        lowlink[node] = min(lowlink[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    comp_idx = len(components)
                    members: list[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc_of[member] = comp_idx
                        members.append(member)
                        if member == node:
                            break
                    components.append(tuple(members))
        result = (tuple(scc_of), tuple(components))
        self._memo["condensation"] = result
        return result

    def closure_masks(self) -> tuple[int, ...]:
        """``λ*`` per state, as a state bitmask (bit ``i`` = state id ``i``)."""
        cached = self._memo.get("closure_masks")
        if cached is None:
            scc_of, components = self._condensation()
            comp_mask = [0] * len(components)
            # components arrive children-first, so one pass suffices
            for idx, members in enumerate(components):
                mask = 0
                for m in members:
                    mask |= 1 << m
                for m in members:
                    for t in self.int_succ[m]:
                        j = scc_of[t]
                        if j != idx:
                            mask |= comp_mask[j]
                comp_mask[idx] = mask
            cached = tuple(comp_mask[scc_of[i]] for i in range(self.n_states))
            self._memo["closure_masks"] = cached
        return cached  # type: ignore[return-value]

    def tau_star_masks(self) -> tuple[int, ...]:
        """``τ*`` per state, as an event bitmask."""
        cached = self._memo.get("tau_star_masks")
        if cached is None:
            scc_of, components = self._condensation()
            comp_events = [0] * len(components)
            for idx, members in enumerate(components):
                events = 0
                for m in members:
                    events |= self.enabled_mask[m]
                    for t in self.int_succ[m]:
                        j = scc_of[t]
                        if j != idx:
                            events |= comp_events[j]
                comp_events[idx] = events
            cached = tuple(comp_events[scc_of[i]] for i in range(self.n_states))
            self._memo["tau_star_masks"] = cached
        return cached  # type: ignore[return-value]

    def reachable_mask(self, origin: int | None = None) -> int:
        """States reachable from *origin* (default: initial) via ``T ∪ λ``,
        as a state bitmask.  The default-origin mask is memoized (it backs
        :func:`repro.spec.graph.reachable_states` and the semantic
        analyzer's dead-state rule ``SEM201``)."""
        if origin is None:
            cached = self._memo.get("reachable_mask")
            if cached is not None:
                return cached  # type: ignore[return-value]
            origin = self.initial
            memoize = True
        else:
            memoize = False
        seen = 1 << origin
        stack = [origin]
        ext_moves = self.ext_moves
        int_succ = self.int_succ
        while stack:
            i = stack.pop()
            for _eid, targets in ext_moves[i]:
                for t in targets:
                    bit = 1 << t
                    if not seen & bit:
                        seen |= bit
                        stack.append(t)
            for t in int_succ[i]:
                bit = 1 << t
                if not seen & bit:
                    seen |= bit
                    stack.append(t)
        if memoize:
            self._memo["reachable_mask"] = seen
        return seen

    def sink_menu(self) -> tuple[tuple[int, int], ...]:
        """Sink sets as ``(member_mask, acceptance_event_mask)`` pairs.

        Ordered exactly like :func:`repro.spec.graph.sink_sets` (by the
        sorted member ids, which is the sorted state-key order).
        """
        cached = self._memo.get("sink_menu")
        if cached is None:
            scc_of, components = self._condensation()
            sinks: list[tuple[tuple[int, ...], int, int]] = []
            for idx, members in enumerate(components):
                leaves = any(
                    scc_of[t] != idx for m in members for t in self.int_succ[m]
                )
                if leaves:
                    continue
                member_mask = 0
                accept = 0
                for m in members:
                    member_mask |= 1 << m
                    accept |= self.enabled_mask[m]
                sinks.append((tuple(sorted(members)), member_mask, accept))
            sinks.sort(key=lambda entry: entry[0])
            cached = tuple((mask, accept) for _, mask, accept in sinks)
            self._memo["sink_menu"] = cached
        return cached  # type: ignore[return-value]

    def acceptance_menus(self) -> tuple[tuple[int, ...], ...]:
        """Per state: acceptance event masks of the λ*-reachable sinks.

        Mirrors :func:`repro.spec.graph.sink_acceptance_sets` — one entry
        per reachable sink in global sink order, duplicates preserved.
        """
        cached = self._memo.get("acceptance_menus")
        if cached is None:
            closures = self.closure_masks()
            menu = self.sink_menu()
            cached = tuple(
                tuple(
                    accept
                    for member_mask, accept in menu
                    if member_mask & closures[i]
                )
                for i in range(self.n_states)
            )
            self._memo["acceptance_menus"] = cached
        return cached  # type: ignore[return-value]

    def int_succ_csr(self) -> tuple[memoryview, memoryview]:
        """``λ`` adjacency in CSR form, as flat ``array('q')`` memoryviews.

        Returns ``(offsets, targets)``: the λ-successors of state ``i``
        are ``targets[offsets[i]:offsets[i + 1]]``, ascending.  The flat
        form trades the per-state tuple indirection of :attr:`int_succ`
        for two contiguous buffers, so hot loops (the quotient kernel's
        Ext-closure, the product τ* crawl) read successors with plain
        integer slicing instead of chasing nested objects.
        """
        cached = self._memo.get("int_succ_csr")
        if cached is None:
            offsets = array("q", [0])
            targets = array("q")
            total = 0
            for succ in self.int_succ:
                total += len(succ)
                offsets.append(total)
                targets.extend(succ)
            cached = (memoryview(offsets), memoryview(targets))
            self._memo["int_succ_csr"] = cached
        return cached  # type: ignore[return-value]

    def psi_flat(self) -> memoryview:
        """The ``ψ`` table flattened row-major into one ``array('q')``.

        ``psi_flat()[a * n_events + e]`` equals ``psi_table()[a][e]``
        (``-1`` = disabled); one bounds-checked buffer read replaces two
        tuple indexings in the kernel's inner ``ok`` check.
        """
        cached = self._memo.get("psi_flat")
        if cached is None:
            flat = array("q")
            for row in self.psi_table():
                flat.extend(row)
            cached = memoryview(flat)
            self._memo["psi_flat"] = cached
        return cached  # type: ignore[return-value]

    def psi_table(self) -> tuple[tuple[int, ...], ...]:
        """``ψ``-step table for a normal-form spec: state × event → id.

        ``psi_table()[a][e] == -1`` means the event is not enabled anywhere
        in ``a``'s internal closure (the labeled ``psi_step`` returns
        ``None``).  Ambiguity — possible only when the spec is *not* in
        normal form — raises the same :class:`~repro.errors.NormalFormError`
        the labeled path raises, by delegating to it.
        """
        cached = self._memo.get("psi_table")
        if cached is None:
            closures = self.closure_masks()
            rows: list[tuple[int, ...]] = []
            for a in range(self.n_states):
                row = [-1] * self.n_events
                for member in iter_bits(closures[a]):
                    for eid, targets in self.ext_moves[member]:
                        for t in targets:
                            if row[eid] == -1 or row[eid] == t:
                                row[eid] = t
                            else:
                                # non-unique ψ-step: raise the reference error
                                from .normal_form import psi_step

                                psi_step(
                                    self.source,
                                    self.states[a],
                                    self.events[eid],
                                )
                rows.append(tuple(row))
            cached = tuple(rows)
            self._memo["psi_table"] = cached
        return cached  # type: ignore[return-value]


# ----------------------------------------------------------------------
# the bounded compile cache
# ----------------------------------------------------------------------
_CACHE: OrderedDict[Specification, CompiledSpec] = OrderedDict()


def compiled(spec: Specification) -> CompiledSpec:
    """The compiled form of *spec*, from the bounded LRU cache.

    Keyed on the specification itself: equality is structural, so two equal
    specs (regardless of display name) share one compiled object — safe
    because the compiled form never exposes the name.
    """
    entry = _CACHE.get(spec)
    if entry is not None:
        _CACHE.move_to_end(spec)
        obs.add("kernel.cache_hits", 1)
        return entry
    obs.add("kernel.cache_misses", 1)
    obs.add("kernel.compile_calls", 1)
    entry = CompiledSpec(spec)
    _CACHE[spec] = entry
    if len(_CACHE) > CACHE_MAXSIZE:
        _CACHE.popitem(last=False)
    return entry


def compiled_cache_clear() -> None:
    """Drop every cached compiled spec (testing aid)."""
    _CACHE.clear()


def compiled_cache_info() -> dict[str, int]:
    """Current cache occupancy (``size`` / ``maxsize``)."""
    return {"size": len(_CACHE), "maxsize": CACHE_MAXSIZE}
