"""Fluent construction of specifications.

:class:`SpecBuilder` accumulates states and transitions incrementally and
produces an immutable :class:`~repro.spec.spec.Specification`.  It infers the
state set and alphabet from the transitions added (both can also be declared
explicitly, which is how a spec declares events it *refuses* everywhere).

Example — the paper's alternating accept/deliver service (Fig. 11)::

    service = (
        SpecBuilder("S")
        .external(0, "acc", 1)
        .external(1, "del", 0)
        .initial(0)
        .build()
    )
"""

from __future__ import annotations

from typing import Iterable

from ..errors import SpecError
from ..events import Event
from .spec import Specification, State


class SpecBuilder:
    """Incrementally build a :class:`Specification`.

    All mutating methods return ``self`` so calls can be chained.  The first
    state mentioned (via :meth:`state`, :meth:`external`, or
    :meth:`internal`) becomes the default initial state unless
    :meth:`initial` is called.
    """

    def __init__(self, name: str) -> None:
        self._name = name
        self._states: dict[State, None] = {}  # insertion-ordered set
        self._alphabet: set[Event] = set()
        self._external: list[tuple[State, Event, State]] = []
        self._internal: list[tuple[State, State]] = []
        self._initial: State | None = None

    # ------------------------------------------------------------------
    def state(self, *states: State) -> "SpecBuilder":
        """Declare one or more states (useful for states with no transitions)."""
        for s in states:
            self._states.setdefault(s)
        return self

    def event(self, *events: Event) -> "SpecBuilder":
        """Declare alphabet events explicitly.

        An event declared here but never used in a transition is *refused*
        in every state — a meaningful part of an interface declaration.
        """
        self._alphabet.update(events)
        return self

    def external(self, source: State, event: Event, target: State) -> "SpecBuilder":
        """Add the external transition ``source --event--> target``."""
        self._states.setdefault(source)
        self._states.setdefault(target)
        self._alphabet.add(event)
        self._external.append((source, event, target))
        return self

    def externals(
        self, transitions: Iterable[tuple[State, Event, State]]
    ) -> "SpecBuilder":
        """Add many external transitions at once."""
        for s, e, s2 in transitions:
            self.external(s, e, s2)
        return self

    def internal(self, source: State, target: State) -> "SpecBuilder":
        """Add the internal transition ``source λ target``."""
        self._states.setdefault(source)
        self._states.setdefault(target)
        self._internal.append((source, target))
        return self

    def internals(self, transitions: Iterable[tuple[State, State]]) -> "SpecBuilder":
        """Add many internal transitions at once."""
        for s, s2 in transitions:
            self.internal(s, s2)
        return self

    def initial(self, state: State) -> "SpecBuilder":
        """Designate the initial state ``s0`` (declared if new)."""
        self._states.setdefault(state)
        self._initial = state
        return self

    # ------------------------------------------------------------------
    def build(self) -> Specification:
        """Produce the immutable specification, validating it."""
        if not self._states:
            raise SpecError("builder has no states", spec_name=self._name)
        initial = self._initial
        if initial is None:
            initial = next(iter(self._states))
        return Specification(
            self._name,
            self._states.keys(),
            self._alphabet,
            self._external,
            self._internal,
            initial,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SpecBuilder {self._name!r}: {len(self._states)} states, "
            f"{len(self._external)} external, {len(self._internal)} internal>"
        )
