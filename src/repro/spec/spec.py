"""The specification model of Section 3.

A specification is the tuple ``(S, Σ, T, λ, s0)``:

* ``S`` — a nonempty finite set of states,
* ``Σ`` — a finite set of event names (the component's entire interface),
* ``T ⊆ S × Σ × S`` — the external transition relation,
* ``λ ⊆ S × S`` — the internal transition relation,
* ``s0 ∈ S`` — the initial state.

External events model synchronized interaction with the environment: an
event can occur only when enabled on *both* sides of the interface.
Internal transitions occur under the component's exclusive control and
introduce nondeterminism.

:class:`Specification` instances are immutable value objects.  States may be
any hashable values (strings, ints, tuples, frozensets); all algorithms in
the library return new specifications rather than mutating inputs.  Equality
is structural (same name is *not* required); use
:mod:`repro.spec.equivalence` for isomorphism or behavioural equivalence.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable, Iterator, Mapping

from ..errors import SpecError
from ..events import Alphabet, Event

State = Hashable
"""A specification state: any hashable value."""

ExternalTransition = tuple[State, Event, State]
InternalTransition = tuple[State, State]


def _state_sort_key(state: State) -> tuple[str, str]:
    """Deterministic ordering key for heterogeneous hashable states."""
    return (type(state).__name__, repr(state))


_EMPTY: frozenset = frozenset()


class Specification:
    """An immutable finite-state specification ``(S, Σ, T, λ, s0)``.

    Parameters
    ----------
    name:
        Human-readable identifier used in error messages and rendering.
    states:
        The state set ``S``.  Must be nonempty and contain ``initial``.
    alphabet:
        The event set ``Σ``.  May include events with no transitions (the
        interface is declared, not inferred: an event in ``Σ`` that is never
        enabled is how a component *refuses* that event forever).
    external:
        The relation ``T`` as ``(state, event, state)`` triples.
    internal:
        The relation ``λ`` as ``(state, state)`` pairs.  Self-loops are
        permitted but are semantically inert (``λ*`` is reflexive anyway)
        and are dropped during construction.
    initial:
        The distinguished initial state ``s0``.
    """

    __slots__ = (
        "_name",
        "_states",
        "_alphabet",
        "_external",
        "_internal",
        "_initial",
        "_ext_adj",
        "_int_adj",
        "_ext_radj",
        "_int_radj",
        "_order",
        "_rank",
        "_enabled",
        "_hash",
    )

    def __init__(
        self,
        name: str,
        states: Iterable[State],
        alphabet: Iterable[Event],
        external: Iterable[ExternalTransition],
        internal: Iterable[InternalTransition],
        initial: State,
    ) -> None:
        self._name = str(name)
        self._states = frozenset(states)
        self._alphabet = Alphabet(alphabet)
        self._external = frozenset(
            (s, e, s2) for (s, e, s2) in (tuple(t) for t in external)
        )
        self._internal = frozenset(
            (s, s2) for (s, s2) in (tuple(t) for t in internal) if s != s2
        )
        self._initial = initial
        self._validate()

        # Adjacency indices, built once (specs are immutable).  The inner
        # successor/predecessor sets are frozen here so the query methods can
        # hand them out directly without a per-call copy.
        ext_adj: dict[State, dict[Event, set[State]]] = {s: {} for s in self._states}
        ext_radj: dict[State, dict[Event, set[State]]] = {s: {} for s in self._states}
        for s, e, s2 in self._external:
            ext_adj[s].setdefault(e, set()).add(s2)
            ext_radj[s2].setdefault(e, set()).add(s)
        int_adj: dict[State, set[State]] = {s: set() for s in self._states}
        int_radj: dict[State, set[State]] = {s: set() for s in self._states}
        for s, s2 in self._internal:
            int_adj[s].add(s2)
            int_radj[s2].add(s)
        self._ext_adj = {
            s: {e: frozenset(targets) for e, targets in adj.items()}
            for s, adj in ext_adj.items()
        }
        self._ext_radj = {
            s: {e: frozenset(sources) for e, sources in adj.items()}
            for s, adj in ext_radj.items()
        }
        self._int_adj = {s: frozenset(targets) for s, targets in int_adj.items()}
        self._int_radj = {s: frozenset(sources) for s, sources in int_radj.items()}
        # Deterministic state order, computed once: _state_sort_key builds a
        # repr() per state, so caching the order here means sorting anywhere
        # else in the library is a cheap integer-rank sort.
        self._order = tuple(sorted(self._states, key=_state_sort_key))
        self._rank = {s: i for i, s in enumerate(self._order)}
        self._enabled = {
            s: Alphabet(e for e, targets in adj.items() if targets)
            for s, adj in self._ext_adj.items()
        }
        self._hash = hash(
            (self._states, self._alphabet, self._external, self._internal,
             self._initial)
        )

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        if not self._states:
            raise SpecError("state set must be nonempty", spec_name=self._name)
        if self._initial not in self._states:
            raise SpecError(
                f"initial state {self._initial!r} not in state set",
                spec_name=self._name,
            )
        for s, e, s2 in self._external:
            if s not in self._states:
                raise SpecError(
                    f"external transition source {s!r} not in state set",
                    spec_name=self._name,
                )
            if s2 not in self._states:
                raise SpecError(
                    f"external transition target {s2!r} not in state set",
                    spec_name=self._name,
                )
            if e not in self._alphabet:
                raise SpecError(
                    f"transition event {e!r} not in alphabet",
                    spec_name=self._name,
                )
        for s, s2 in self._internal:
            if s not in self._states or s2 not in self._states:
                raise SpecError(
                    f"internal transition ({s!r}, {s2!r}) references unknown state",
                    spec_name=self._name,
                )

    # ------------------------------------------------------------------
    # components of the tuple
    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Human-readable identifier."""
        return self._name

    @property
    def states(self) -> frozenset[State]:
        """The state set ``S``."""
        return self._states

    @property
    def alphabet(self) -> Alphabet:
        """The event set ``Σ`` (the component's complete interface)."""
        return self._alphabet

    @property
    def external(self) -> frozenset[ExternalTransition]:
        """The external transition relation ``T``."""
        return self._external

    @property
    def internal(self) -> frozenset[InternalTransition]:
        """The internal transition relation ``λ`` (self-loops removed)."""
        return self._internal

    @property
    def initial(self) -> State:
        """The initial state ``s0``."""
        return self._initial

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def successors(self, state: State, event: Event) -> frozenset[State]:
        """States ``s'`` with ``state --event--> s'`` in ``T``."""
        return self._ext_adj[state].get(event, _EMPTY)

    def predecessors(self, state: State, event: Event) -> frozenset[State]:
        """States ``s`` with ``s --event--> state`` in ``T``."""
        return self._ext_radj[state].get(event, _EMPTY)

    def internal_successors(self, state: State) -> frozenset[State]:
        """States reachable from *state* by a single λ step."""
        return self._int_adj[state]

    def internal_predecessors(self, state: State) -> frozenset[State]:
        """States with a single λ step into *state*."""
        return self._int_radj[state]

    def enabled(self, state: State) -> Alphabet:
        """``τ.s`` — the external events enabled in *state*.

        ``e ∈ τ.s ≡ (∃s' : s --e--> s')``
        """
        return self._enabled[state]

    def state_rank(self, state: State) -> int:
        """Position of *state* in the cached deterministic order.

        Equivalent to sorting by :func:`_state_sort_key`, but the repr-based
        key is computed once per state at construction instead of once per
        comparison — use ``key=spec.state_rank`` in hot sorts.
        """
        return self._rank[state]

    def sorted_by_rank(self, states: Iterable[State]) -> list[State]:
        """*states* (members of this spec) in the deterministic order."""
        return sorted(states, key=self._rank.__getitem__)

    def has_internal(self, state: State) -> bool:
        """True if *state* has at least one outgoing internal transition."""
        return bool(self._int_adj[state])

    def out_transitions(self, state: State) -> Iterator[tuple[Event, State]]:
        """All external transitions leaving *state*, deterministically ordered."""
        adj = self._ext_adj[state]
        rank = self._rank
        for e in sorted(adj):
            for s2 in sorted(adj[e], key=rank.__getitem__):
                yield e, s2

    def is_deterministic(self) -> bool:
        """True if the spec has no internal transitions and no event fan-out."""
        if self._internal:
            return False
        return all(
            len(targets) <= 1
            for adj in self._ext_adj.values()
            for targets in adj.values()
        )

    def sorted_states(self) -> list[State]:
        """States in a deterministic order (initial state first)."""
        return [
            self._initial,
            *(s for s in self._order if s != self._initial),
        ]

    # ------------------------------------------------------------------
    # structural helpers
    # ------------------------------------------------------------------
    def renamed(self, name: str) -> "Specification":
        """A copy of this specification with a different display name."""
        return Specification(
            name, self._states, self._alphabet, self._external, self._internal,
            self._initial,
        )

    def map_states(self, mapping: Mapping[State, State] | None = None) -> "Specification":
        """Apply a state-relabeling bijection.

        With ``mapping=None``, states are canonically renumbered 0..n-1 in
        breadth-first order from the initial state (unreachable states are
        appended in deterministic order).  Raises :class:`SpecError` if the
        mapping is not injective on the state set.
        """
        if mapping is None:
            mapping = {s: i for i, s in enumerate(self._bfs_order())}
        image = [mapping[s] for s in self._states]
        if len(set(image)) != len(image):
            raise SpecError("state mapping is not injective", spec_name=self._name)
        return Specification(
            self._name,
            image,
            self._alphabet,
            ((mapping[s], e, mapping[s2]) for s, e, s2 in self._external),
            ((mapping[s], mapping[s2]) for s, s2 in self._internal),
            mapping[self._initial],
        )

    def _bfs_order(self) -> list[State]:
        """States in BFS order from the initial state, deterministic."""
        rank = self._rank
        order: list[State] = []
        seen: set[State] = set()
        frontier: deque[State] = deque([self._initial])
        seen.add(self._initial)
        while frontier:
            state = frontier.popleft()
            order.append(state)
            nexts: list[State] = []
            for e in sorted(self._ext_adj[state]):
                nexts.extend(
                    sorted(self._ext_adj[state][e], key=rank.__getitem__)
                )
            nexts.extend(sorted(self._int_adj[state], key=rank.__getitem__))
            for s2 in nexts:
                if s2 not in seen:
                    seen.add(s2)
                    frontier.append(s2)
        order.extend(s for s in self._order if s not in seen)
        return order

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Specification):
            return NotImplemented
        return (
            self._states == other._states
            and self._alphabet == other._alphabet
            and self._external == other._external
            and self._internal == other._internal
            and self._initial == other._initial
        )

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._states)

    def __repr__(self) -> str:
        return (
            f"<Specification {self._name!r}: {len(self._states)} states, "
            f"{len(self._alphabet)} events, {len(self._external)} external, "
            f"{len(self._internal)} internal>"
        )
