"""Simulation preorders between specifications.

Complements the equivalences in :mod:`repro.spec.equivalence` with the
asymmetric relations used to justify refinement arguments:

* **strong simulation** — every move of the refined machine is matched
  step-for-step (λ matching λ) by the abstract one;
* **weak simulation** — visible moves are matched up to internal steps
  (``⇒e`` against ``⇒e``), internal moves by internal closure;
* **ready simulation (weak)** — weak simulation where, additionally, the
  matching abstract state's eventually-enabled set covers the concrete
  one's; refines trace inclusion toward failure-style semantics and is a
  convenient sufficient check for safety satisfaction that also preserves
  offerings.

All three return a witness relation (greatest fixed point, computed by
refinement from the full relation) so callers can inspect *why* a
refinement holds.  ``simulates*`` convenience predicates compare two
machines from their initial states.  Weak simulation implies trace
inclusion; the property-based tests cross-check this against the
independent :func:`repro.satisfy.safety.satisfies_safety` oracle.
"""

from __future__ import annotations

from ..events import Alphabet
from ..spec.graph import close_under_lambda, lambda_closure, tau_star
from ..spec.spec import Specification, State

Relation = frozenset[tuple[State, State]]


def strong_simulation(
    concrete: Specification, abstract: Specification
) -> Relation:
    """Greatest strong simulation of *concrete* by *abstract*.

    ``(c, a)`` is in the result iff every external step ``c ⇀e c'`` has a
    matching ``a ⇀e a'`` with ``(c', a')`` related, and every internal
    step of ``c`` is matched by an internal step of ``a``.
    """
    relation = {
        (c, a) for c in concrete.states for a in abstract.states
    }

    def simulated(c: State, a: State) -> bool:
        for e in concrete.enabled(c):
            for c2 in concrete.successors(c, e):
                if not any(
                    (c2, a2) in relation for a2 in abstract.successors(a, e)
                ):
                    return False
        for c2 in concrete.internal_successors(c):
            if not any(
                (c2, a2) in relation
                for a2 in abstract.internal_successors(a)
            ):
                return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in sorted(relation, key=repr):
            if not simulated(*pair):
                relation.discard(pair)
                changed = True
    return frozenset(relation)


def _weak_step_targets(
    spec: Specification, closure: dict[State, frozenset[State]], state: State, event
) -> frozenset[State]:
    """``{s' : state ⇒e s'}`` — λ* e λ* targets."""
    targets: set[State] = set()
    for x in closure[state]:
        for y in spec.successors(x, event):
            targets |= closure[y]
    return frozenset(targets)


def weak_simulation(
    concrete: Specification, abstract: Specification
) -> Relation:
    """Greatest weak simulation of *concrete* by *abstract*.

    External steps are matched by weak steps (``λ* e λ*``); an internal
    step of *concrete* is matched by staying within the λ-closure of the
    abstract state.
    """
    a_closure = lambda_closure(abstract)
    relation = {(c, a) for c in concrete.states for a in abstract.states}

    def simulated(c: State, a: State) -> bool:
        for e in concrete.enabled(c):
            matches = _weak_step_targets(abstract, a_closure, a, e)
            for c2 in concrete.successors(c, e):
                if not any((c2, a2) in relation for a2 in matches):
                    return False
        for c2 in concrete.internal_successors(c):
            if not any((c2, a2) in relation for a2 in a_closure[a]):
                return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in sorted(relation, key=repr):
            if not simulated(*pair):
                relation.discard(pair)
                changed = True
    return frozenset(relation)


def ready_simulation(
    concrete: Specification, abstract: Specification
) -> Relation:
    """Weak simulation restricted to pairs with covered offerings.

    ``(c, a)`` additionally requires ``τ*.c ⊆ τ*.a`` — whatever the
    concrete machine may eventually offer, the abstract one may too.
    """
    base = weak_simulation(concrete, abstract)
    offered_c = tau_star(concrete)
    offered_a = tau_star(abstract)
    relation = {
        (c, a) for (c, a) in base if offered_c[c] <= offered_a[a]
    }
    # restriction can break closure; re-refine
    a_closure = lambda_closure(abstract)

    def simulated(c: State, a: State) -> bool:
        for e in concrete.enabled(c):
            matches = _weak_step_targets(abstract, a_closure, a, e)
            for c2 in concrete.successors(c, e):
                if not any((c2, a2) in relation for a2 in matches):
                    return False
        for c2 in concrete.internal_successors(c):
            if not any((c2, a2) in relation for a2 in a_closure[a]):
                return False
        return True

    changed = True
    while changed:
        changed = False
        for pair in sorted(relation, key=repr):
            if not simulated(*pair):
                relation.discard(pair)
                changed = True
    return frozenset(relation)


def _initial_pair_related(
    concrete: Specification, abstract: Specification, relation: Relation
) -> bool:
    """The initial states are related up to the abstract's λ-closure."""
    starts = close_under_lambda(abstract, [abstract.initial])
    return any((concrete.initial, a) in relation for a in starts)


def strongly_simulates(abstract: Specification, concrete: Specification) -> bool:
    """``abstract`` strongly simulates ``concrete`` (from the initials)."""
    relation = strong_simulation(concrete, abstract)
    return (concrete.initial, abstract.initial) in relation


def weakly_simulates(abstract: Specification, concrete: Specification) -> bool:
    """``abstract`` weakly simulates ``concrete`` (from the initials)."""
    relation = weak_simulation(concrete, abstract)
    return _initial_pair_related(concrete, abstract, relation)


def ready_simulates(abstract: Specification, concrete: Specification) -> bool:
    """``abstract`` ready-simulates ``concrete`` (from the initials)."""
    relation = ready_simulation(concrete, abstract)
    return _initial_pair_related(concrete, abstract, relation)


def simulation_offering_gap(
    concrete: Specification, abstract: Specification
) -> dict[State, Alphabet]:
    """Diagnostic: per reachable concrete state, the events it may
    eventually offer that the abstract machine cannot after *any* trace
    reaching that state.

    Pairs each concrete state ``c`` with the union of the abstract's
    possibly-occupied state sets over all traces leading to ``c`` (an
    on-the-fly determinization, as in the safety checker) and reports
    ``τ*.c − ∪ τ*.(abstract states)`` where nonempty.  An empty dict means
    the concrete machine never out-offers the abstract one — a necessary
    condition for (and useful explanation of failures of) ready
    simulation.
    """
    offered_c = tau_star(concrete)
    offered_a = tau_star(abstract)

    start_subset = close_under_lambda(abstract, [abstract.initial])
    Pair = tuple[State, frozenset[State]]
    seen: set[Pair] = set()
    frontier: list[Pair] = []
    for c in close_under_lambda(concrete, [concrete.initial]):
        pair = (c, start_subset)
        if pair not in seen:
            seen.add(pair)
            frontier.append(pair)
    abstract_states_for: dict[State, set[State]] = {}
    while frontier:
        c, subset = frontier.pop()
        abstract_states_for.setdefault(c, set()).update(subset)
        for c2 in concrete.internal_successors(c):
            pair = (c2, subset)
            if pair not in seen:
                seen.add(pair)
                frontier.append(pair)
        for e in concrete.enabled(c):
            targets: set[State] = set()
            for a in subset:
                targets |= abstract.successors(a, e)
            nxt = close_under_lambda(abstract, targets) if targets else frozenset()
            for c2 in concrete.successors(c, e):
                pair = (c2, nxt)
                if pair not in seen:
                    seen.add(pair)
                    frontier.append(pair)

    gaps: dict[State, Alphabet] = {}
    for c, abstract_states in abstract_states_for.items():
        covered: set = set()
        for a in abstract_states:
            covered |= offered_a[a]
        missing = offered_c[c] - Alphabet(covered)
        if missing:
            gaps[c] = missing
    return gaps
