"""Seeded random specification generators.

Used by property-based tests and by the Section 7 complexity benchmarks.
Everything is driven by an explicit :class:`random.Random` seed so instances
are reproducible across runs and platforms.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..events import Event
from .ops import prune_unreachable
from .spec import Specification


def random_spec(
    *,
    n_states: int,
    events: Sequence[Event],
    external_density: float = 0.3,
    internal_density: float = 0.1,
    seed: int = 0,
    name: str | None = None,
    ensure_connected: bool = True,
) -> Specification:
    """Generate a random specification.

    Parameters
    ----------
    n_states:
        Number of states (labeled ``0..n_states-1``; state 0 is initial).
    events:
        Alphabet to draw transition labels from.
    external_density:
        Probability that a given (state, event) pair has an outgoing
        transition (target uniform).
    internal_density:
        Probability that a given ordered state pair has a λ transition.
    seed:
        RNG seed; equal seeds give equal specs.
    ensure_connected:
        Add a deterministic spanning chain of transitions so every state is
        reachable (keeps instance sizes meaningful), then prune anything
        still unreachable.
    """
    rng = random.Random(seed)
    states = list(range(n_states))
    external: list[tuple[int, Event, int]] = []
    internal: list[tuple[int, int]] = []

    if ensure_connected and n_states > 1:
        for s in range(1, n_states):
            parent = rng.randrange(s)
            e = rng.choice(list(events))
            external.append((parent, e, s))

    for s in states:
        for e in events:
            if rng.random() < external_density:
                external.append((s, e, rng.randrange(n_states)))
    for s in states:
        for s2 in states:
            if s != s2 and rng.random() < internal_density:
                internal.append((s, s2))

    spec = Specification(
        name if name is not None else f"rand(n={n_states},seed={seed})",
        states,
        events,
        external,
        internal,
        0,
    )
    return prune_unreachable(spec)


def random_deterministic_service(
    *,
    n_states: int,
    events: Sequence[Event],
    out_degree: int = 2,
    seed: int = 0,
    name: str | None = None,
) -> Specification:
    """A random deterministic λ-free service spec (always normal form).

    Every state gets up to *out_degree* outgoing transitions on distinct
    events; a spanning chain guarantees connectivity.  Suitable as the
    ``A`` input of quotient problems in tests and benchmarks.
    """
    rng = random.Random(seed)
    events = list(events)
    states = list(range(n_states))
    chosen: dict[tuple[int, Event], int] = {}

    if n_states > 1:
        for s in range(1, n_states):
            parent = rng.randrange(s)
            free = [e for e in events if (parent, e) not in chosen]
            if not free:
                free = events
            chosen[(parent, rng.choice(free))] = s

    for s in states:
        degree = rng.randint(1, max(1, out_degree))
        picks = rng.sample(events, min(degree, len(events)))
        for e in picks:
            if (s, e) not in chosen:
                chosen[(s, e)] = rng.randrange(n_states)

    spec = Specification(
        name if name is not None else f"randsvc(n={n_states},seed={seed})",
        states,
        events,
        [(s, e, s2) for (s, e), s2 in chosen.items()],
        (),
        0,
    )
    return prune_unreachable(spec)


def random_quotient_instance(
    *,
    n_service: int = 3,
    n_component: int = 5,
    n_int_events: int = 3,
    n_ext_events: int = 2,
    seed: int = 0,
) -> tuple[Specification, Specification, list[Event], list[Event]]:
    """A random quotient-problem instance ``(A, B, Int, Ext)``.

    ``A`` is a deterministic service over Ext (hence normal form); ``B`` is
    a random component over Int ∪ Ext.  Instances are *not* guaranteed to
    admit a converter — that is the point for testing both outcomes.
    """
    rng = random.Random(seed)
    ext = [f"x{k}" for k in range(n_ext_events)]
    internal_events = [f"m{k}" for k in range(n_int_events)]
    service = random_deterministic_service(
        n_states=n_service, events=ext, seed=rng.randrange(2**31), name="A"
    )
    component = random_spec(
        n_states=n_component,
        events=ext + internal_events,
        external_density=0.35,
        internal_density=0.05,
        seed=rng.randrange(2**31),
        name="B",
    )
    return service, component, internal_events, ext
