"""Normal form of service specifications (Section 3) and the ``ψ`` function.

A specification is in **normal form** iff

1. no state has both internal and external transitions leaving it;
2. ``λ*`` is antisymmetric — no nontrivial cycle of internal transitions;
3. for any states with a common λ-ancestor, transitions on the same event
   converge: ``s λ* s' ∧ s λ* s'' ∧ s' ⇀e ŝ ∧ s'' ⇀e ŝ' ⇒ ŝ = ŝ'``.

Normal form "focuses" nondeterminism: after any trace ``t`` there is a
unique state ``ψ_A.t`` such that the set of possibly-occupied states is
exactly its λ-closure.  A normal-form spec is structured as *hub* states
(λ-out only) fanning out to *option* states (external-out only), each option
being one acceptable behaviour the service may choose.

This module provides:

* :func:`normal_form_violations` / :func:`is_normal_form` /
  :func:`assert_normal_form` — exact checks with witnesses;
* :func:`psi` / :func:`psi_step` — the ``ψ_A.t`` state function and the
  paper's hub-advance relation ``a ⟶e▷ a'`` used by the quotient algorithm;
* :func:`determinize` — subset construction; always applicable,
  trace-preserving, trivially normal form, but **conservative** for
  progress (it merges all acceptance options into their union, so it demands
  more of an implementation than the original spec did);
* :func:`normalize` — the exact hub/option construction, which preserves
  both the trace set and the menu of sink acceptance sets; raises
  :class:`NormalizationError` when that is impossible (when some
  pre-emptible external transition's event is not covered by any sibling
  sink's acceptance set).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import NormalFormError, NormalizationError
from ..events import Alphabet, Event
from .graph import (
    close_under_lambda,
    internal_sccs,
    lambda_closure,
    lambda_closure_of,
    sink_sets,
)
from .spec import Specification, State, _state_sort_key


@dataclass(frozen=True)
class NormalFormViolation:
    """A witness that one normal-form condition fails.

    ``condition`` is ``"i"``, ``"ii"``, or ``"iii"``; ``witness`` holds the
    offending states/event in a condition-specific shape.
    """

    condition: str
    witness: Any
    message: str


def normal_form_violations(spec: Specification) -> list[NormalFormViolation]:
    """All normal-form violations, deterministically ordered (may be empty)."""
    violations: list[NormalFormViolation] = []

    # (i) no state with both internal and external out-transitions
    for s in sorted(spec.states, key=_state_sort_key):
        if spec.has_internal(s) and spec.enabled(s):
            violations.append(
                NormalFormViolation(
                    "i",
                    s,
                    f"state {s!r} has both internal and external "
                    "outgoing transitions",
                )
            )

    # (ii) λ* antisymmetric: every λ-SCC is a singleton
    components, _ = internal_sccs(spec)
    for component in components:
        if len(component) > 1:
            violations.append(
                NormalFormViolation(
                    "ii",
                    frozenset(component),
                    f"internal cycle through states "
                    f"{sorted(component, key=_state_sort_key)!r}",
                )
            )

    # (iii) e-transitions from a common λ-ancestor's closure converge
    closure = lambda_closure(spec)
    for s in sorted(spec.states, key=_state_sort_key):
        targets_by_event: dict[Event, set[State]] = {}
        for s2 in closure[s]:
            for e in spec.enabled(s2):
                targets_by_event.setdefault(e, set()).update(
                    spec.successors(s2, e)
                )
        for e in sorted(targets_by_event):
            targets = targets_by_event[e]
            if len(targets) > 1:
                violations.append(
                    NormalFormViolation(
                        "iii",
                        (s, e, frozenset(targets)),
                        f"event {e!r} from the internal closure of {s!r} "
                        f"reaches distinct states "
                        f"{sorted(targets, key=_state_sort_key)!r}",
                    )
                )
    return violations


def is_normal_form(spec: Specification) -> bool:
    """True iff *spec* satisfies normal-form conditions (i)-(iii)."""
    return not normal_form_violations(spec)


def assert_normal_form(spec: Specification) -> None:
    """Raise :class:`NormalFormError` (with the first witness) if not normal."""
    violations = normal_form_violations(spec)
    if violations:
        first = violations[0]
        raise NormalFormError(
            f"{spec.name}: not in normal form — {first.message}"
            + (f" (+{len(violations) - 1} more)" if len(violations) > 1 else ""),
            condition=first.condition,
            witness=first.witness,
        )


# ----------------------------------------------------------------------
# ψ and the hub-advance relation
# ----------------------------------------------------------------------
def psi_step(spec: Specification, hub: State, event: Event) -> State | None:
    """The paper's ``a ⟶e▷ a'`` relation for a normal-form spec.

    From hub state ``a = ψ_A.q``, advance by one external event: the unique
    target ``a' = ψ_A.(qe)``, or ``None`` if *event* is not enabled anywhere
    in the hub's internal closure (i.e. ``event ∉ τ*.a``).
    """
    targets: set[State] = set()
    for s in lambda_closure_of(spec, hub):
        targets |= spec.successors(s, event)
    if not targets:
        return None
    if len(targets) > 1:
        raise NormalFormError(
            f"{spec.name}: ψ-step on {event!r} from {hub!r} is not unique "
            f"(targets {sorted(targets, key=_state_sort_key)!r}); "
            "specification is not in normal form",
            condition="iii",
            witness=(hub, event, frozenset(targets)),
        )
    return next(iter(targets))


def psi(spec: Specification, t: Iterable[Event]) -> State | None:
    """``ψ_A.t`` — the unique focus state after trace *t*.

    Returns ``None`` when *t* is not a trace of the specification.  The spec
    must be in normal form (checked lazily through :func:`psi_step`).
    ``ψ_A.ε`` is the initial state.
    """
    hub: State | None = spec.initial
    for e in t:
        assert hub is not None
        hub = psi_step(spec, hub, e)
        if hub is None:
            return None
    return hub


def hub_enabled(spec: Specification, hub: State) -> Alphabet:
    """``τ*.hub`` — all events enabled somewhere in the hub's closure."""
    events: set[Event] = set()
    for s in lambda_closure_of(spec, hub):
        events |= spec.enabled(s)
    return Alphabet(events)


# ----------------------------------------------------------------------
# determinization (conservative normal form)
# ----------------------------------------------------------------------
def determinize(
    spec: Specification, *, name: str | None = None
) -> Specification:
    """Subset construction: a deterministic, λ-free, trace-equivalent spec.

    The result is trivially in normal form.  **Progress caveat**: all of the
    original's acceptance options collapse into one (their union), so using
    the result as a service spec demands *more* progress of implementations
    than the original — sound but not complete.  Use :func:`normalize` when
    option structure must be preserved.

    States of the result are frozensets of original states; apply
    ``relabel_canonical`` for compact numbering.
    """
    initial = close_under_lambda(spec, [spec.initial])
    states: set[frozenset[State]] = {initial}
    external: list[tuple[frozenset[State], Event, frozenset[State]]] = []
    frontier = [initial]
    while frontier:
        current = frontier.pop()
        events: set[Event] = set()
        for s in current:
            events |= spec.enabled(s)
        for e in sorted(events):
            targets: set[State] = set()
            for s in current:
                targets |= spec.successors(s, e)
            nxt = close_under_lambda(spec, targets)
            external.append((current, e, nxt))
            if nxt not in states:
                states.add(nxt)
                frontier.append(nxt)
    return Specification(
        name if name is not None else f"det({spec.name})",
        states,
        spec.alphabet,
        external,
        (),
        initial,
    )


# ----------------------------------------------------------------------
# exact normalization (hub/option construction)
# ----------------------------------------------------------------------
def normalize(
    spec: Specification, *, name: str | None = None
) -> Specification:
    """Convert to normal form preserving traces *and* acceptance options.

    Construction: determinize the trace structure (subset states ``Q``), and
    for each ``Q`` reify the menu of acceptance options — the distinct
    ``τ*`` sets of the sink sets contained in ``Q`` — as *option* states
    hanging off a *hub* state by λ edges.  An option with acceptance set
    ``F`` has an external transition on each ``e ∈ F`` to the hub of
    ``δ(Q, e)``.

    Exactness condition: every event enabled anywhere in ``Q`` must belong
    to some option's acceptance set; otherwise the construction would drop a
    trace (the event was only available in a pre-emptible, non-sink state)
    and :class:`NormalizationError` is raised.  Specs that are already in
    normal form, and all λ-free specs, always normalize successfully; a
    λ-free deterministic spec normalizes to (an isomorph of) itself.
    """
    all_sinks = sink_sets(spec)
    sink_accept: list[tuple[frozenset[State], Alphabet]] = []
    for sink in all_sinks:
        events: set[Event] = set()
        for s in sink:
            events |= spec.enabled(s)
        sink_accept.append((sink, Alphabet(events)))

    initial_q = close_under_lambda(spec, [spec.initial])
    subset_states: set[frozenset[State]] = {initial_q}
    delta: dict[tuple[frozenset[State], Event], frozenset[State]] = {}
    options_of: dict[frozenset[State], list[Alphabet]] = {}
    frontier = [initial_q]
    while frontier:
        current = frontier.pop()
        enabled_here: set[Event] = set()
        for s in current:
            enabled_here |= spec.enabled(s)

        # acceptance options: distinct τ* sets of the sinks inside Q
        opts: list[Alphabet] = []
        covered: set[Event] = set()
        for sink, accept in sink_accept:
            if sink <= current and accept not in opts:
                opts.append(accept)
                covered |= accept
        uncovered = enabled_here - covered
        if uncovered:
            raise NormalizationError(
                f"{spec.name}: cannot normalize exactly — events "
                f"{sorted(uncovered)} are enabled only in pre-emptible "
                "(non-sink) states reachable after some trace; "
                "use determinize() for a conservative normal form"
            )
        options_of[current] = sorted(opts, key=lambda a: a.sorted())

        for e in sorted(enabled_here):
            targets: set[State] = set()
            for s in current:
                targets |= spec.successors(s, e)
            nxt = close_under_lambda(spec, targets)
            delta[(current, e)] = nxt
            if nxt not in subset_states:
                subset_states.add(nxt)
                frontier.append(nxt)

    # Build hub/option machine.  A hub with a single option that is total
    # (covers every enabled event) collapses into a direct state.
    new_name = name if name is not None else f"nf({spec.name})"
    nf_states: list[State] = []
    external: list[tuple[State, Event, State]] = []
    internal: list[tuple[State, State]] = []

    def hub_label(q: frozenset[State]) -> State:
        return ("hub", q)

    def option_label(q: frozenset[State], accept: Alphabet) -> State:
        return ("opt", q, frozenset(accept))

    for q in subset_states:
        opts = options_of[q]
        direct = len(opts) == 1
        hub = hub_label(q)
        nf_states.append(hub)
        if direct:
            accept = opts[0]
            for e in accept.sorted():
                external.append((hub, e, hub_label(delta[(q, e)])))
        else:
            for accept in opts:
                opt = option_label(q, accept)
                nf_states.append(opt)
                internal.append((hub, opt))
                for e in accept.sorted():
                    external.append((opt, e, hub_label(delta[(q, e)])))

    return Specification(
        new_name,
        nf_states,
        spec.alphabet,
        external,
        internal,
        hub_label(initial_q),
    )


def ensure_normal_form(
    spec: Specification, *, conservative_fallback: bool = False
) -> Specification:
    """Return a normal-form spec equivalent to *spec*.

    If *spec* is already in normal form it is returned unchanged; otherwise
    it is normalized exactly, falling back to :func:`determinize` when exact
    normalization fails and *conservative_fallback* is set (otherwise the
    :class:`NormalizationError` propagates).
    """
    if is_normal_form(spec):
        return spec
    try:
        return normalize(spec)
    except NormalizationError:
        if conservative_fallback:
            return determinize(spec)
        raise
