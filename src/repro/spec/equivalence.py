"""Behavioural equivalences between specifications.

The library compares machines at three granularities:

* **isomorphism** — identical up to state renaming (used to compare
  regenerated figures with golden machines);
* **strong / weak bisimilarity** — step-for-step matching, with λ treated
  as an explicit action (strong) or absorbed (weak);
* **trace equivalence** — equal trace sets; exactly the paper's
  "satisfies with respect to safety" in both directions.

All algorithms are exact (no bounded approximation) and deterministic.
"""

from __future__ import annotations

from ..events import Event
from .graph import lambda_closure
from .normal_form import determinize
from .spec import Specification, State, _state_sort_key

_LAMBDA = object()  # distinguished "action" label for internal steps


def _signature(
    spec: Specification,
    state: State,
    block_of: dict[State, int],
) -> frozenset[tuple[object, int]]:
    """Next-step signature of *state* w.r.t. the current partition."""
    sig: set[tuple[object, int]] = set()
    for e in spec.enabled(state):
        for s2 in spec.successors(state, e):
            sig.add((e, block_of[s2]))
    for s2 in spec.internal_successors(state):
        sig.add((_LAMBDA, block_of[s2]))
    return frozenset(sig)


def strong_bisimulation_classes(
    spec: Specification,
    initial_partition: dict[State, int] | None = None,
) -> dict[State, int]:
    """Partition-refinement strong bisimulation over one spec.

    λ steps are treated as transitions on a distinguished action.  Returns
    a map from state to block index (blocks numbered deterministically).

    *initial_partition* seeds the refinement with a finer starting
    partition (refinement only ever splits blocks, so every seed split is
    preserved).  The default seed is the trivial one-block partition, which
    yields the coarsest strong bisimulation.
    """
    if initial_partition is None:
        block_of = {s: 0 for s in spec.states}
        n_blocks = 1
    else:
        block_of = dict(initial_partition)
        n_blocks = len(set(block_of.values()))
    while True:
        sig_of = {
            s: (block_of[s], _signature(spec, s, block_of)) for s in spec.states
        }
        # deterministic re-blocking
        distinct = sorted(
            {sig for sig in sig_of.values()},
            key=lambda sig: (sig[0], sorted(map(repr, sig[1]))),
        )
        index = {sig: i for i, sig in enumerate(distinct)}
        new_block_of = {s: index[sig_of[s]] for s in spec.states}
        if len(distinct) == n_blocks:
            return new_block_of
        block_of = new_block_of
        n_blocks = len(distinct)


def _disjoint_union(
    left: Specification, right: Specification
) -> tuple[Specification, State, State]:
    """One spec containing both machines side by side (tagged states)."""
    def l(s: State) -> State:
        return ("L", s)

    def r(s: State) -> State:
        return ("R", s)

    states = [l(s) for s in left.states] + [r(s) for s in right.states]
    external = [(l(s), e, l(s2)) for s, e, s2 in left.external]
    external += [(r(s), e, r(s2)) for s, e, s2 in right.external]
    internal = [(l(s), l(s2)) for s, s2 in left.internal]
    internal += [(r(s), r(s2)) for s, s2 in right.internal]
    union = Specification(
        f"{left.name}+{right.name}",
        states,
        left.alphabet | right.alphabet,
        external,
        internal,
        l(left.initial),
    )
    return union, l(left.initial), r(right.initial)


def strongly_bisimilar(left: Specification, right: Specification) -> bool:
    """True iff the initial states are strongly bisimilar (λ as an action)."""
    if left.alphabet != right.alphabet:
        return False
    union, li, ri = _disjoint_union(left, right)
    classes = strong_bisimulation_classes(union)
    return classes[li] == classes[ri]


def _weak_saturation(spec: Specification) -> Specification:
    """Saturate weak steps: add ``s ⇒e s'`` (λ* e λ*) as explicit edges.

    Internal transitions are replaced by nothing (absorbed); the saturated
    machine is suitable for *strong* bisimulation checking, yielding a
    weak-bisimilarity-like equivalence adequate for our test oracles.
    """
    closure = lambda_closure(spec)
    external: set[tuple[State, Event, State]] = set()
    for s in spec.states:
        for x in closure[s]:
            for e in spec.enabled(x):
                for y in spec.successors(x, e):
                    for s2 in closure[y]:
                        external.add((s, e, s2))
    return Specification(
        f"sat({spec.name})",
        spec.states,
        spec.alphabet,
        external,
        (),
        spec.initial,
    )


def weakly_trace_bisimilar(left: Specification, right: Specification) -> bool:
    """Bisimilarity of the weak-step saturations of the two machines.

    Coarser than strong bisimilarity, finer than trace equivalence.  (This
    is not exactly branching/weak bisimulation — saturation loses some
    divergence structure — but it is a sound behavioural comparison for the
    λ-free machines the quotient algorithm produces, and tests use it as
    such.)
    """
    if left.alphabet != right.alphabet:
        return False
    return strongly_bisimilar(_weak_saturation(left), _weak_saturation(right))


def trace_equivalent(left: Specification, right: Specification) -> bool:
    """Exact trace-set equality (two-way safety satisfaction)."""
    if left.alphabet != right.alphabet:
        return False
    dl = determinize(left)
    dr = determinize(right)
    seen: set[tuple[State, State]] = set()
    frontier: list[tuple[State, State]] = [(dl.initial, dr.initial)]
    seen.add((dl.initial, dr.initial))
    while frontier:
        a, b = frontier.pop()
        ea, eb = dl.enabled(a), dr.enabled(b)
        if ea != eb:
            return False
        for e in sorted(ea):
            (a2,) = dl.successors(a, e)
            (b2,) = dr.successors(b, e)
            if (a2, b2) not in seen:
                seen.add((a2, b2))
                frontier.append((a2, b2))
    return True


def isomorphic(left: Specification, right: Specification) -> bool:
    """Exact isomorphism: a state bijection preserving all structure.

    Backtracking search seeded from the initial states, pruned by local
    degree signatures and bisimulation classes.  Intended for the small
    machines in figures and tests.
    """
    if left.alphabet != right.alphabet:
        return False
    if len(left.states) != len(right.states):
        return False
    if len(left.external) != len(right.external):
        return False
    if len(left.internal) != len(right.internal):
        return False

    union, li, ri = _disjoint_union(left, right)
    classes = strong_bisimulation_classes(union)

    def klass(side: str, s: State) -> int:
        return classes[(side, s)]

    def local_sig(spec: Specification, s: State):
        out = tuple(
            sorted((e, len(spec.successors(s, e))) for e in spec.enabled(s))
        )
        inn = tuple(
            sorted(
                (e, len(spec.predecessors(s, e)))
                for e in spec.alphabet
                if spec.predecessors(s, e)
            )
        )
        return (
            out,
            inn,
            len(spec.internal_successors(s)),
            len(spec.internal_predecessors(s)),
        )

    left_states = sorted(left.states, key=_state_sort_key)
    right_states = sorted(right.states, key=_state_sort_key)

    mapping: dict[State, State] = {}
    used: set[State] = set()

    def compatible(a: State, b: State) -> bool:
        if klass("L", a) != klass("R", b):
            return False
        if local_sig(left, a) != local_sig(right, b):
            return False
        return True

    def consistent(a: State, b: State) -> bool:
        # all already-mapped neighbours must correspond
        for e in left.alphabet:
            for a2 in left.successors(a, e):
                if a2 in mapping and mapping[a2] not in right.successors(b, e):
                    return False
            for a2 in left.predecessors(a, e):
                if a2 in mapping and mapping[a2] not in right.predecessors(b, e):
                    return False
        for a2 in left.internal_successors(a):
            if a2 in mapping and mapping[a2] not in right.internal_successors(b):
                return False
        for a2 in left.internal_predecessors(a):
            if a2 in mapping and mapping[a2] not in right.internal_predecessors(b):
                return False
        return True

    def extend(idx: int) -> bool:
        if idx == len(left_states):
            return _verify_iso(left, right, mapping)
        a = left_states[idx]
        if a in mapping:
            return extend(idx + 1)
        for b in right_states:
            if b in used or not compatible(a, b):
                continue
            mapping[a] = b
            used.add(b)
            if consistent(a, b) and extend(idx + 1):
                return True
            del mapping[a]
            used.discard(b)
        return False

    if not compatible(left.initial, right.initial):
        return False
    mapping[left.initial] = right.initial
    used.add(right.initial)
    # put the initial state first in the ordering
    left_states.remove(left.initial)
    left_states.insert(0, left.initial)
    return extend(1)


def _verify_iso(
    left: Specification, right: Specification, mapping: dict[State, State]
) -> bool:
    ext = {(mapping[s], e, mapping[s2]) for s, e, s2 in left.external}
    if ext != set(right.external):
        return False
    inn = {(mapping[s], mapping[s2]) for s, s2 in left.internal}
    if inn != set(right.internal):
        return False
    return mapping[left.initial] == right.initial
