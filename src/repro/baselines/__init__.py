"""Bottom-up baselines: Okumura's seed method and Lam's projection method."""

from .okumura import (
    RELAY_EVENT,
    ConversionSeed,
    OkumuraResult,
    fuse_peers,
    okumura_converter,
)
from .projection import (
    MessageCorrespondence,
    ProjectionMap,
    ab_to_ns_projection_map,
    is_faithful_projection,
    project,
    relay_converter,
)

__all__ = [
    "ConversionSeed",
    "MessageCorrespondence",
    "OkumuraResult",
    "ProjectionMap",
    "RELAY_EVENT",
    "ab_to_ns_projection_map",
    "fuse_peers",
    "is_faithful_projection",
    "okumura_converter",
    "project",
    "relay_converter",
]
