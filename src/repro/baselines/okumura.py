"""Okumura's bottom-up converter derivation (baseline).

K. Okumura, *A formal protocol conversion method*, SIGCOMM '86 — the main
prior approach the paper positions against (Section 2).  Instead of a
global service specification, the inputs are:

* the **missing entities** of the two protocols — the peer machines the
  converter replaces (e.g. the AB receiver ``A1`` and the NS sender ``N0``
  when converting between ``A0`` and ``N1``), and
* a **conversion seed**: a partial specification over (a subset of) the
  converter's events expressing required correspondences/orderings.

The derivation used here follows the method's shape:

1. fuse the missing entities' *service* interfaces (the deliver event of
   one peer feeds the accept event of the other) into an internal relay;
2. take the synchronous product of the fused machines with the seed
   (every machine whose alphabet contains an event must enable it);
3. iteratively prune states that cannot proceed at all (local deadlock
   pruning) — Okumura's progressiveness cleanup.

The crucial *limitation* — the point of the paper's comparison — is
faithfully reproduced: the result is derived from the missing entities, so
it must still be checked against the global service afterwards, and when
that check fails the method gives no further guidance (whereas the
top-down quotient's failure proves nonexistence).  The BASE benchmark runs
exactly this comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compose.binary import synchronous_product
from ..errors import QuotientError
from ..spec.ops import hide_events, prune_unreachable, rename_events
from ..spec.spec import Specification, _state_sort_key

RELAY_EVENT = "__relay__"
"""Internal name for the fused deliver→accept handoff."""


@dataclass(frozen=True)
class ConversionSeed:
    """A partial converter specification (Okumura's "conversion seed").

    ``spec`` constrains the ordering of the events in its alphabet; events
    outside its alphabet are unconstrained.  ``trivial_seed`` builds the
    no-constraint seed.
    """

    spec: Specification

    @staticmethod
    def trivial(name: str = "seed") -> "ConversionSeed":
        """The unconstraining seed: one state, empty alphabet."""
        return ConversionSeed(
            Specification(name, [0], (), (), (), 0)
        )


@dataclass(frozen=True)
class OkumuraResult:
    """Outcome of the bottom-up derivation.

    ``converter`` is the derived machine (``None`` if pruning emptied it);
    ``raw_product`` is the pre-pruning product, kept for diagnostics;
    ``pruned_states`` counts local-deadlock removals.
    """

    converter: Specification | None
    raw_product: Specification
    pruned_states: int

    @property
    def exists(self) -> bool:
        return self.converter is not None


def fuse_peers(
    p_peer: Specification,
    q_peer: Specification,
    *,
    p_deliver: str,
    q_accept: str,
    name: str = "fused",
) -> Specification:
    """Fuse the missing entities: ``p_deliver`` of one feeds ``q_accept``
    of the other, becoming an internal handoff of the candidate converter.
    """
    p_renamed = rename_events(p_peer, {p_deliver: RELAY_EVENT})
    q_renamed = rename_events(q_peer, {q_accept: RELAY_EVENT})
    # synchronize on the relay, keep everything else; then hide the relay
    product = synchronous_product(p_renamed, q_renamed, name=name)
    return hide_events(product, [RELAY_EVENT], name=name)


def _prune_local_deadlocks(spec: Specification) -> tuple[Specification, int]:
    """Iteratively remove states with no outgoing moves (and re-trim)."""
    removed_total = 0
    current = spec
    while True:
        dead = {
            s
            for s in current.states
            if not current.enabled(s) and not current.has_internal(s)
        }
        dead.discard(current.initial)
        if not dead:
            return current, removed_total
        removed_total += len(dead)
        keep = current.states - dead
        current = prune_unreachable(
            Specification(
                current.name,
                keep,
                current.alphabet,
                (
                    (s, e, s2)
                    for s, e, s2 in current.external
                    if s in keep and s2 in keep
                ),
                (
                    (s, s2)
                    for s, s2 in current.internal
                    if s in keep and s2 in keep
                ),
                current.initial,
            )
        )


def okumura_converter(
    p_peer: Specification,
    q_peer: Specification,
    *,
    p_deliver: str,
    q_accept: str,
    seed: ConversionSeed | None = None,
    name: str | None = None,
) -> OkumuraResult:
    """Derive a converter bottom-up from the missing peer entities.

    Parameters
    ----------
    p_peer, q_peer:
        The machines the converter replaces (their channel-side alphabets
        become the converter's interface).
    p_deliver, q_accept:
        The service events fused into the internal relay (the message
        handoff inside the converter).
    seed:
        Optional ordering constraints (default: unconstraining).

    Notes
    -----
    The derived machine contains internal transitions (the relay handoff
    and any λ steps of the peers); it is a converter *specification* in the
    paper's sense and can be composed and checked like any other.
    """
    if p_deliver not in p_peer.alphabet:
        raise QuotientError(
            f"{p_deliver!r} is not an event of {p_peer.name}"
        )
    if q_accept not in q_peer.alphabet:
        raise QuotientError(
            f"{q_accept!r} is not an event of {q_peer.name}"
        )
    fused = fuse_peers(
        p_peer,
        q_peer,
        p_deliver=p_deliver,
        q_accept=q_accept,
        name=name or f"okumura({p_peer.name},{q_peer.name})",
    )
    constrained = fused
    if seed is not None and seed.spec.alphabet:
        constrained = synchronous_product(
            fused, seed.spec, name=fused.name
        )
        # seed states are bookkeeping; flatten the labels
        mapping = {s: i for i, s in enumerate(
            sorted(constrained.states, key=_state_sort_key))}
        constrained = constrained.map_states(mapping)

    pruned, removed = _prune_local_deadlocks(constrained)
    converter: Specification | None = pruned
    if len(pruned.states) == 1 and not pruned.external and not pruned.internal:
        # degenerate single-state remnant with no behaviour at all counts
        # as "derivation failed" only if the raw product had behaviour
        if constrained.external or constrained.internal:
            converter = None
    return OkumuraResult(
        converter=converter,
        raw_product=constrained,
        pruned_states=removed,
    )
