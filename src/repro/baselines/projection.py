"""Lam's projection / common-image method (baseline).

S. S. Lam, *Protocol conversion*, IEEE TSE 14(3), 1988 — the second prior
approach discussed in Section 2: find a **projection** of each existing
protocol system onto a **common image**; when one exists, the image defines
the service the conversion system implements, and a simple (often
stateless) relay converter falls out.

This module provides the machinery to *state and check* such projections:

* :func:`project` — apply a state-aggregation + event-relabeling map to a
  specification (events mapped to ``None`` become internal steps);
* :func:`is_faithful_projection` — verify the projected machine is
  behaviourally a quotient of the original (every original transition maps
  to an image transition or an image self-loop/internal step, and the
  image has no extra reachable behaviour);
* :func:`relay_converter` — build the message-relay converter induced by a
  message correspondence (receive a P-message, emit the corresponding
  Q-message, and vice versa).

The BASE benchmark shows the method's documented boundary on the paper's
own example: the AB protocol *does* project onto the NS protocol (map
``d0, d1 ↦ D`` and ``a0, a1 ↦ A``), but the induced stateless relay fails
verification because the backward correspondence ``A ↦ a0/a1`` needs the
sequence bit — state the relay does not have.  Heuristic projection finds
the insight; only the quotient construction finds (or refutes) the actual
converter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..errors import SpecError
from ..events import Alphabet, Event
from ..spec.builder import SpecBuilder
from ..spec.equivalence import weakly_trace_bisimilar
from ..spec.ops import prune_unreachable
from ..spec.spec import Specification, State


@dataclass(frozen=True)
class ProjectionMap:
    """A candidate projection: state aggregation plus event relabeling.

    ``states`` maps every original state to an image state; ``events`` maps
    every original event to an image event, or to ``None`` to erase it
    (erased events become internal steps of the image).
    """

    states: Mapping[State, State]
    events: Mapping[Event, Event | None]

    def image_event(self, event: Event) -> Event | None:
        if event not in self.events:
            raise SpecError(f"projection does not map event {event!r}")
        return self.events[event]

    def image_state(self, state: State) -> State:
        if state not in self.states:
            raise SpecError(f"projection does not map state {state!r}")
        return self.states[state]


def project(
    spec: Specification, mapping: ProjectionMap, *, name: str | None = None
) -> Specification:
    """The image of *spec* under *mapping*.

    Transitions whose event maps to ``None``, and transitions that the
    aggregation turns into self-loops, become internal (and inert
    self-loops are dropped); λ transitions project to λ transitions.
    """
    states = {mapping.image_state(s) for s in spec.states}
    external: list[tuple[State, Event, State]] = []
    internal: list[tuple[State, State]] = []
    for s, e, s2 in spec.external:
        img_e = mapping.image_event(e)
        img_s, img_s2 = mapping.image_state(s), mapping.image_state(s2)
        if img_e is None:
            internal.append((img_s, img_s2))
        else:
            external.append((img_s, img_e, img_s2))
    for s, s2 in spec.internal:
        internal.append((mapping.image_state(s), mapping.image_state(s2)))
    alphabet = Alphabet(e for e in mapping.events.values() if e is not None)
    return Specification(
        name if name is not None else f"proj({spec.name})",
        states,
        alphabet,
        external,
        internal,
        mapping.image_state(spec.initial),
    )


def is_faithful_projection(
    spec: Specification,
    image: Specification,
    mapping: ProjectionMap,
) -> bool:
    """Does *mapping* exhibit *image* as a faithful image of *spec*?

    Checked as: the projected machine, after reachability trimming, is
    weak-trace-bisimilar to the declared image (both must also share an
    alphabet).  This captures Lam's requirement that the image "is" the
    original protocol viewed at a coarser grain, up to internal moves.
    """
    projected = prune_unreachable(project(spec, mapping))
    if projected.alphabet != image.alphabet:
        return False
    return weakly_trace_bisimilar(projected, prune_unreachable(image))


@dataclass(frozen=True)
class MessageCorrespondence:
    """A message-level correspondence between two protocols.

    ``forward`` maps messages received from the P side to messages emitted
    on the Q side; ``backward`` maps messages received from the Q side to
    messages emitted on the P side.  Events use the paper's channel
    conventions: the converter *receives* ``+x`` and *emits* ``-y``.
    """

    forward: Mapping[str, str]
    backward: Mapping[str, str]


def relay_converter(
    correspondence: MessageCorrespondence, *, name: str = "relay"
) -> Specification:
    """The memoryless relay induced by a message correspondence.

    From its idle state the relay accepts any mapped incoming message
    ``+x`` and must then emit the corresponding outgoing message ``-y``
    before returning to idle.  This is the "simple, stateless converter"
    Lam's method yields when a common image exists; its alphabet is all
    the correspondence's receive/emit events.
    """
    builder = SpecBuilder(name).initial("idle")
    for incoming, outgoing in sorted(correspondence.forward.items()):
        mid = ("fwd", incoming)
        builder.external("idle", f"+{incoming}", mid)
        builder.external(mid, f"-{outgoing}", "idle")
    for incoming, outgoing in sorted(correspondence.backward.items()):
        mid = ("bwd", incoming)
        builder.external("idle", f"+{incoming}", mid)
        builder.external(mid, f"-{outgoing}", "idle")
    return builder.build()


def ab_to_ns_projection_map(ab_machine: Specification, *, role: str) -> ProjectionMap:
    """The paper-example projection: erase the AB sequence bit.

    Maps the AB sender onto the NS sender (``role="sender"``) or the AB
    receiver onto the NS receiver (``role="receiver"``), sending
    ``d0, d1 ↦ D`` and ``a0, a1 ↦ A`` and aggregating the bit-indexed
    states pairwise.  State numbering follows
    :func:`repro.protocols.abp.ab_sender` / ``ab_receiver``.
    """
    if role == "sender":
        events: dict[Event, Event | None] = {
            "acc": "acc",
            "-d0": "-D",
            "-d1": "-D",
            "+a0": "+A",
            "+a1": "+A",
            "timeout": "timeoutN",
        }
        states: dict[State, State] = {0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2}
    elif role == "receiver":
        events = {
            "+d0": "+D",
            "+d1": "+D",
            "del": "del",
            "-a0": "-A",
            "-a1": "-A",
        }
        states = {0: 0, 1: 1, 2: 2, 3: 0, 4: 1, 5: 2}
    else:
        raise SpecError(f"unknown role {role!r} (want 'sender' or 'receiver')")
    missing = set(ab_machine.states) - set(states)
    if missing:
        raise SpecError(
            f"projection map does not cover states {sorted(map(repr, missing))}"
        )
    return ProjectionMap(states=states, events=events)
