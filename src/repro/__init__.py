"""Reproduction of Calvert & Lam, "Deriving a Protocol Converter: A
Top-Down Method" (SIGCOMM 1989).

Top-level convenience re-exports; see subpackages for the full API:

* :mod:`repro.spec` — specifications, normal form, equivalences
* :mod:`repro.compose` — the || composition operator
* :mod:`repro.traces` — trace theory and the i/o projections
* :mod:`repro.satisfy` — safety/progress satisfaction checking
* :mod:`repro.quotient` — the quotient algorithm (the paper's contribution)
* :mod:`repro.lint` — rule-based static analysis of specs and quotient problems
* :mod:`repro.protocols` — the paper's protocols (AB, NS, channels, services)
* :mod:`repro.baselines` — Okumura and Lam bottom-up baselines
* :mod:`repro.arch` — Section 6 layered-architecture modeling
"""

from .events import Alphabet, Interface
from .spec import SpecBuilder, Specification

__version__ = "1.0.0"

__all__ = ["Alphabet", "Interface", "SpecBuilder", "Specification", "__version__"]
