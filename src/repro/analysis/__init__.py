"""Analysis utilities: deadlock/livelock detection, statistics, reports."""

from .frontier import (
    CandidateOutcome,
    FrontierReport,
    service_frontier,
    stronger_or_equal,
)
from .coverage import CoverageReport, converter_coverage
from .deadlock import DeadlockReport, find_deadlocks, is_dead
from .explain import bad_state_chronicle, explain_converter
from .livelock import LivelockReport, find_livelocks, stuck_states
from .stats import SpecStats, spec_stats

__all__ = [
    "CandidateOutcome",
    "CoverageReport",
    "FrontierReport",
    "DeadlockReport",
    "LivelockReport",
    "SpecStats",
    "bad_state_chronicle",
    "converter_coverage",
    "explain_converter",
    "find_deadlocks",
    "find_livelocks",
    "is_dead",
    "service_frontier",
    "spec_stats",
    "stronger_or_equal",
    "stuck_states",
]
