"""Service-frontier analysis: what is the best service B can provide?

The quotient algorithm answers "can these components provide *this*
service?"  A protocol designer usually asks the converse: "what is the
*strongest* service these components can be made to provide?"  This
module answers it over a candidate family:

* candidates are service specifications over the same ``Ext``;
* candidate ``S1`` is **at least as strong as** ``S2`` when ``S1``
  satisfies ``S2`` in the paper's sense (``satisfies(S1, S2)``): then any
  system satisfying ``S1`` also satisfies ``S2`` (trace inclusion composes
  for safety; the acceptance-set containment composes for progress);
* a candidate is **achievable** when :func:`repro.quotient.solve_quotient`
  finds a converter for it;
* the **frontier** is the set of achievable candidates not strictly
  dominated by another achievable one.

The SEC5 frontier benchmark runs this over the duplicate-tolerance /
window family on both paper configurations, mechanizing the paper's
"weaken the service ... and thereby obtain a converter" remark as a
search rather than a one-off observation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AlphabetError
from ..quotient.solve import solve_quotient
from ..satisfy.verify import satisfies
from ..spec.spec import Specification


@dataclass(frozen=True)
class CandidateOutcome:
    """One candidate service's verdict against the components."""

    service: Specification
    achievable: bool
    converter_states: int | None

    @property
    def name(self) -> str:
        return self.service.name


@dataclass(frozen=True)
class FrontierReport:
    """Outcome of a frontier search."""

    outcomes: tuple[CandidateOutcome, ...]
    frontier: tuple[str, ...]  # names of undominated achievable candidates
    dominance: tuple[tuple[str, str], ...]  # (stronger, weaker) pairs

    def describe(self) -> str:
        lines = ["service frontier:"]
        for o in self.outcomes:
            verdict = (
                f"achievable ({o.converter_states}-state converter)"
                if o.achievable
                else "not achievable"
            )
            star = " *" if o.name in self.frontier else ""
            lines.append(f"  {o.name:24s} {verdict}{star}")
        lines.append("  (* = on the frontier: strongest achievable)")
        return "\n".join(lines)


def stronger_or_equal(s1: Specification, s2: Specification) -> bool:
    """``S1`` at least as strong as ``S2``: ``S1`` satisfies ``S2``."""
    if s1.alphabet != s2.alphabet:
        return False
    return satisfies(s1, s2).holds


def service_frontier(
    candidates: Sequence[Specification],
    component: Specification,
    *,
    verify: bool = True,
) -> FrontierReport:
    """Evaluate every candidate and compute the achievability frontier.

    All candidates must share one alphabet (the Ext of the problem).
    Candidates must be in normal form (enforced by the solver).
    """
    alphabets = {frozenset(c.alphabet) for c in candidates}
    if len(alphabets) > 1:
        raise AlphabetError(
            "all frontier candidates must share one service alphabet"
        )
    names = [c.name for c in candidates]
    if len(set(names)) != len(names):
        raise AlphabetError("frontier candidates must have distinct names")

    outcomes: list[CandidateOutcome] = []
    for service in candidates:
        result = solve_quotient(service, component, verify=verify)
        outcomes.append(
            CandidateOutcome(
                service=service,
                achievable=result.exists,
                converter_states=(
                    len(result.converter.states) if result.exists else None
                ),
            )
        )

    dominance: list[tuple[str, str]] = []
    for a in candidates:
        for b in candidates:
            if a.name != b.name and stronger_or_equal(a, b):
                dominance.append((a.name, b.name))

    achievable = {o.name for o in outcomes if o.achievable}
    strictly_dominated = set()
    for stronger, weaker in dominance:
        if (
            stronger in achievable
            and weaker in achievable
            and (weaker, stronger) not in dominance  # strict
        ):
            strictly_dominated.add(weaker)
    frontier = tuple(
        o.name
        for o in outcomes
        if o.achievable and o.name not in strictly_dominated
    )
    return FrontierReport(
        outcomes=tuple(outcomes),
        frontier=frontier,
        dominance=tuple(sorted(dominance)),
    )
