"""Deadlock detection.

A *deadlock* is a reachable state with no outgoing transitions at all —
the system can neither interact nor move internally.  (A state that merely
refuses all *external* events but can still move internally is not a
deadlock; see :mod:`repro.analysis.livelock` for that.)

In the paper's satisfaction theory, deadlock freedom of a closed system
(empty alphabet) is the degenerate case of progress; these utilities are
used directly by tests and by the architecture experiments of Section 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Event
from ..spec.graph import find_path, reachable_states
from ..spec.spec import Specification, State, _state_sort_key
from ..traces.core import Trace


@dataclass(frozen=True)
class DeadlockReport:
    """Deadlock analysis outcome.

    ``deadlocks`` lists reachable dead states; ``witness`` is a shortest
    label path (events and ``None`` for internal steps) from the initial
    state to the first deadlock, when one exists.
    """

    deadlocks: tuple[State, ...]
    witness: tuple[Event | None, ...] | None

    @property
    def deadlock_free(self) -> bool:
        return not self.deadlocks

    def describe(self) -> str:
        if self.deadlock_free:
            return "deadlock-free"
        path = (
            "unreachable?"
            if self.witness is None
            else ".".join("λ" if e is None else e for e in self.witness)
        )
        return (
            f"{len(self.deadlocks)} deadlock state(s); "
            f"shortest witness: ⟨{path}⟩ to {self.deadlocks[0]!r}"
        )


def is_dead(spec: Specification, state: State) -> bool:
    """True if *state* has no outgoing external or internal transition."""
    return not spec.enabled(state) and not spec.has_internal(state)


def find_deadlocks(spec: Specification) -> DeadlockReport:
    """All reachable deadlock states, with a shortest witness path."""
    dead = tuple(
        sorted(
            (s for s in reachable_states(spec) if is_dead(spec, s)),
            key=_state_sort_key,
        )
    )
    witness = None
    if dead:
        dead_set = set(dead)
        path = find_path(spec, lambda s: s in dead_set)
        if path is not None:
            witness = tuple(path)
    return DeadlockReport(deadlocks=dead, witness=witness)


def trace_of_witness(witness: tuple[Event | None, ...]) -> Trace:
    """Drop internal steps from a witness path, leaving the visible trace."""
    return tuple(e for e in witness if e is not None)
