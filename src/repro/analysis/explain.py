"""Human-readable reports of quotient runs.

Turns a :class:`~repro.quotient.types.QuotientResult` into the kind of
narrative a protocol designer needs: what the phases did, why states died,
what the converter looks like, and — when no converter exists — where the
safety/progress conflict lives (the Section 5 diagnosis).
"""

from __future__ import annotations

from ..compose.binary import compose
from ..quotient.types import QuotientResult
from ..spec.spec import Specification, State, _state_sort_key
from .livelock import find_livelocks
from .stats import spec_stats


def _transition_table(spec: Specification, limit: int = 60) -> list[str]:
    lines = []
    shown = 0
    for s in spec.sorted_states():
        for e, s2 in spec.out_transitions(s):
            lines.append(f"    {s!r} --{e}--> {s2!r}")
            shown += 1
            if shown >= limit:
                lines.append(
                    f"    ... ({len(spec.external) - shown} more transitions)"
                )
                return lines
    return lines


def explain_converter(result: QuotientResult, *, show_pairs: bool = False) -> str:
    """A full textual report of a quotient computation."""
    lines: list[str] = [result.summary()]
    problem = result.problem

    if result.c0 is not None:
        lines.append("")
        lines.append("safety-phase machine C0:")
        lines.append("  " + spec_stats(result.c0).describe())

    if result.exists:
        assert result.converter is not None
        lines.append("")
        lines.append("converter C:")
        lines.append("  " + spec_stats(result.converter).describe())
        lines.extend(_transition_table(result.converter))
        if show_pairs:
            lines.append("  state annotations (f: state -> {(a, b)}):")
            for c in result.converter.sorted_states():
                pairs = sorted(result.f.get(c, frozenset()), key=repr)
                lines.append(f"    {c!r}: {pairs!r}")
        if result.verification is not None:
            lines.append("")
            lines.append(result.verification.describe())
    elif result.c0 is not None:
        # diagnose the conflict on the safety-phase composite
        lines.append("")
        lines.append("diagnosis (why no converter exists):")
        composite = compose(problem.component, result.c0)
        livelock = find_livelocks(composite)
        lines.append("  B || C0 analysis: " + livelock.describe())
        if result.progress is not None and result.progress.rounds:
            first = result.progress.rounds[0]
            lines.append(
                f"  progress phase round 0 marked {len(first.bad_states)} of "
                f"{len(first.bad_states) + first.remaining} states bad; "
                "removal cascaded to the initial state"
            )
            from ..quotient.diagnose import diagnose_nonexistence

            diagnosis = diagnose_nonexistence(result, max_frontier=3)
            lines.append("")
            for line in diagnosis.describe().splitlines():
                lines.append("  " + line)
    else:
        from ..quotient.diagnose import safety_failure_diagnostic

        lines.append("")
        lines.append("diagnosis:")
        for line in safety_failure_diagnostic(result).describe().splitlines():
            lines.append("  " + line)
    return "\n".join(lines)


def bad_state_chronicle(result: QuotientResult) -> list[tuple[int, tuple[State, ...]]]:
    """Per-round lists of removed states, for tabulation in benchmarks."""
    if result.progress is None:
        return []
    chronicle: list[tuple[int, tuple[State, ...]]] = []
    for r in result.progress.rounds:
        chronicle.append(
            (r.round_index, tuple(sorted(r.bad_states, key=_state_sort_key)))
        )
    return chronicle
