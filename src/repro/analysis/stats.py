"""Structural statistics of specifications, for reports and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass

from ..spec.graph import reachable_states, sink_sets
from ..spec.normal_form import is_normal_form
from ..spec.spec import Specification
from .deadlock import find_deadlocks


@dataclass(frozen=True)
class SpecStats:
    """A summary snapshot of one specification."""

    name: str
    states: int
    reachable: int
    events: int
    external_transitions: int
    internal_transitions: int
    deterministic: bool
    normal_form: bool
    sink_set_count: int
    largest_sink_set: int
    deadlocks: int

    def describe(self) -> str:
        return (
            f"{self.name}: {self.states} states ({self.reachable} reachable), "
            f"{self.events} events, {self.external_transitions} external / "
            f"{self.internal_transitions} internal transitions; "
            f"{'deterministic' if self.deterministic else 'nondeterministic'}, "
            f"{'normal form' if self.normal_form else 'not normal form'}, "
            f"{self.sink_set_count} sink set(s) (largest {self.largest_sink_set}), "
            f"{self.deadlocks} deadlock(s)"
        )

    def as_row(self) -> dict[str, object]:
        """Flat dict form for tabular output in benchmarks."""
        return {
            "name": self.name,
            "states": self.states,
            "reachable": self.reachable,
            "events": self.events,
            "ext_transitions": self.external_transitions,
            "int_transitions": self.internal_transitions,
            "deterministic": self.deterministic,
            "normal_form": self.normal_form,
            "sink_sets": self.sink_set_count,
            "deadlocks": self.deadlocks,
        }


def spec_stats(spec: Specification) -> SpecStats:
    """Compute :class:`SpecStats` for *spec*."""
    sinks = sink_sets(spec)
    return SpecStats(
        name=spec.name,
        states=len(spec.states),
        reachable=len(reachable_states(spec)),
        events=len(spec.alphabet),
        external_transitions=len(spec.external),
        internal_transitions=len(spec.internal),
        deterministic=spec.is_deterministic(),
        normal_form=is_normal_form(spec),
        sink_set_count=len(sinks),
        largest_sink_set=max((len(s) for s in sinks), default=0),
        deadlocks=len(find_deadlocks(spec).deadlocks),
    )
