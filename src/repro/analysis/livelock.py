"""Livelock ("useless exchange forever") detection.

Section 5 observes that the symmetric configuration's safety-phase
converter has states from which, after a loss in the NS channel, "the user
sees no further progress, while C and A0 exchange useless data and
acknowledgement messages forever" (the paper's states 6, 8, 15 and 17 in
Fig. 12).  This module detects exactly that situation in a composite:

* a state is **stuck** when no external event is enabled anywhere in its
  internal closure (``τ*.s = ∅``) — the environment will never see another
  event;
* a stuck state is a **livelock** when its internal closure contains an
  internal cycle (the system keeps exchanging hidden messages forever);
* a stuck state whose closure can only halt is a plain deadlock tail.

The Fig. 12 benchmark uses :func:`find_livelocks` on ``B ‖ C0`` to exhibit
the paper's phenomenon mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Event
from ..spec.graph import (
    find_path,
    internal_sccs,
    lambda_closure_of,
    reachable_states,
    tau_star,
)
from ..spec.spec import Specification, State, _state_sort_key


@dataclass(frozen=True)
class LivelockReport:
    """Livelock analysis outcome.

    ``stuck`` — reachable states with ``τ* = ∅``;
    ``livelocked`` — the subset whose closure contains an internal cycle;
    ``witness`` — a shortest label path from the initial state to the first
    livelocked state (``None`` when there is none);
    ``cycle`` — the states of one internal cycle inside that livelock.
    """

    stuck: tuple[State, ...]
    livelocked: tuple[State, ...]
    witness: tuple[Event | None, ...] | None
    cycle: frozenset[State] | None

    @property
    def livelock_free(self) -> bool:
        return not self.livelocked

    def describe(self) -> str:
        if self.livelock_free:
            if self.stuck:
                return (
                    f"no livelocks, but {len(self.stuck)} stuck "
                    "(externally silent) state(s)"
                )
            return "livelock-free"
        visible = (
            None
            if self.witness is None
            else ".".join(e for e in self.witness if e is not None)
        )
        return (
            f"{len(self.livelocked)} livelocked state(s) "
            f"(of {len(self.stuck)} stuck); after trace ⟨{visible}⟩ the "
            f"system can cycle internally forever through "
            f"{len(self.cycle or ())} state(s) with no further external event"
        )


def stuck_states(spec: Specification) -> frozenset[State]:
    """Reachable states whose internal closure enables no external event."""
    offered = tau_star(spec)
    return frozenset(
        s for s in reachable_states(spec) if not offered[s]
    )


def find_livelocks(spec: Specification) -> LivelockReport:
    """Full livelock analysis of a specification (usually a composite)."""
    stuck = stuck_states(spec)

    # internal cycles: nontrivial λ-SCCs, or states with a λ self-loop
    # (self-loops are dropped at construction, so only SCCs matter)
    components, _ = internal_sccs(spec)
    cyclic = frozenset(
        s for comp in components if len(comp) > 1 for s in comp
    )

    livelocked: list[State] = []
    first_cycle: frozenset[State] | None = None
    for s in sorted(stuck, key=_state_sort_key):
        closure = lambda_closure_of(spec, s)
        hit = closure & cyclic
        if hit:
            livelocked.append(s)
            if first_cycle is None:
                for comp in components:
                    if len(comp) > 1 and set(comp) <= closure:
                        first_cycle = frozenset(comp)
                        break

    witness = None
    if livelocked:
        target = set(livelocked)
        path = find_path(spec, lambda s: s in target)
        if path is not None:
            witness = tuple(path)

    return LivelockReport(
        stuck=tuple(sorted(stuck, key=_state_sort_key)),
        livelocked=tuple(livelocked),
        witness=witness,
        cycle=first_cycle,
    )
