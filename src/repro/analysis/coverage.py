"""Converter coverage analysis.

Quantifies how much of a (maximal) converter actually participates in the
composite system — the flip side of the paper's "superfluous portions"
observation.  For a converter ``C`` against components ``B``:

* a converter state is **engaged** when some reachable composite state
  ``⟨b, c⟩`` uses it;
* it is **vacuous** when its quotient pair set is empty (no ``B`` trace
  matches any converter trace reaching it) — always unengaged;
* the **traffic census** counts, per converter transition, whether the
  composite can ever exercise it.

These reports drive pruning decisions and make converter-size comparisons
(e.g. in the BASE and ABL benchmarks) meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compose.binary import compose
from ..spec.graph import reachable_states
from ..spec.spec import Specification, State, _state_sort_key


@dataclass(frozen=True)
class CoverageReport:
    """Engagement census of a converter within its composite."""

    converter_states: int
    engaged_states: tuple[State, ...]
    unengaged_states: tuple[State, ...]
    exercised_transitions: int
    total_transitions: int

    @property
    def state_coverage(self) -> float:
        if not self.converter_states:
            return 0.0
        return len(self.engaged_states) / self.converter_states

    @property
    def transition_coverage(self) -> float:
        if not self.total_transitions:
            return 0.0
        return self.exercised_transitions / self.total_transitions

    def describe(self) -> str:
        return (
            f"converter coverage: {len(self.engaged_states)}/"
            f"{self.converter_states} states engaged "
            f"({self.state_coverage:.0%}), "
            f"{self.exercised_transitions}/{self.total_transitions} "
            f"transitions exercisable ({self.transition_coverage:.0%}); "
            f"{len(self.unengaged_states)} state(s) never used by the "
            "composite"
        )


def converter_coverage(
    component: Specification, converter: Specification
) -> CoverageReport:
    """Compute the engagement census of *converter* against *component*.

    Builds the reachable composite ``component ‖ converter`` and projects
    its states and synchronized moves back onto the converter.
    """
    composite = compose(component, converter)
    reachable = reachable_states(composite)

    engaged: set[State] = set()
    for state in reachable:
        # composite states are (b, c) pairs produced by binary compose
        _, c = state
        engaged.add(c)

    # which converter transitions can fire: a converter transition (c,e,c2)
    # is exercisable iff some reachable composite state (b,c) has b able to
    # take e together with the converter (i.e. the synchronized internal
    # move exists in the composite's internal relation)
    exercisable: set[tuple[State, str, State]] = set()
    by_source: dict[State, set[State]] = {}
    for b, c in reachable:
        by_source.setdefault(c, set()).add(b)
    for c, e, c2 in converter.external:
        for b in by_source.get(c, ()):
            if any(
                True for _ in component.successors(b, e)
            ):
                exercisable.add((c, e, c2))
                break

    unengaged = sorted(
        (s for s in converter.states if s not in engaged),
        key=_state_sort_key,
    )
    return CoverageReport(
        converter_states=len(converter.states),
        engaged_states=tuple(sorted(engaged, key=_state_sort_key)),
        unengaged_states=tuple(unengaged),
        exercised_transitions=len(exercisable),
        total_transitions=len(converter.external),
    )
