"""Events, alphabets, and interface partitions.

The paper models interaction through *named events* shared between a
specification and its environment (Section 3).  Events here are plain
strings, but this module centralizes the conventions the paper uses:

* ``-x`` denotes passing message ``x`` **into** a channel (a send);
* ``+x`` denotes removing message ``x`` **from** a channel (a receive);
* all other names (``acc``, ``del``, ``timeout`` ...) are service or timer
  events.

It also provides :class:`Alphabet`, an immutable event set with convenience
set algebra matching the composition operator's alphabet arithmetic
(union / intersection / symmetric difference), and :class:`Interface`, the
(Int, Ext) partition a quotient problem is stated over (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from .errors import AlphabetError

Event = str
"""An event name.  Events are compared by string equality."""

SEND_PREFIX = "-"
RECEIVE_PREFIX = "+"


def is_send(event: Event) -> bool:
    """Return True if *event* uses the paper's send-into-channel convention."""
    return event.startswith(SEND_PREFIX) and len(event) > 1


def is_receive(event: Event) -> bool:
    """Return True if *event* uses the paper's receive-from-channel convention."""
    return event.startswith(RECEIVE_PREFIX) and len(event) > 1


def message_of(event: Event) -> str:
    """Strip a send/receive prefix, returning the bare message name.

    For events without a prefix the event name itself is returned.

    >>> message_of("-d0")
    'd0'
    >>> message_of("+a1")
    'a1'
    >>> message_of("acc")
    'acc'
    """
    if is_send(event) or is_receive(event):
        return event[1:]
    return event


def send(message: str) -> Event:
    """Build the send event for *message* (``-message``)."""
    return SEND_PREFIX + message


def receive(message: str) -> Event:
    """Build the receive event for *message* (``+message``)."""
    return RECEIVE_PREFIX + message


def matching_receive(event: Event) -> Event:
    """Return the receive event matching a send event.

    >>> matching_receive("-d0")
    '+d0'
    """
    if not is_send(event):
        raise AlphabetError(f"{event!r} is not a send event")
    return receive(message_of(event))


def matching_send(event: Event) -> Event:
    """Return the send event matching a receive event.

    >>> matching_send("+a0")
    '-a0'
    """
    if not is_receive(event):
        raise AlphabetError(f"{event!r} is not a receive event")
    return send(message_of(event))


class Alphabet(frozenset):
    """An immutable set of event names.

    ``Alphabet`` is a thin ``frozenset`` subclass: it supports all frozenset
    algebra while rendering deterministically (sorted) and validating that
    members are non-empty strings.
    """

    def __new__(cls, events: Iterable[Event] = ()) -> "Alphabet":
        events = tuple(events)
        for e in events:
            if not isinstance(e, str) or not e:
                raise AlphabetError(f"invalid event name: {e!r}")
        return super().__new__(cls, events)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Alphabet({sorted(self)!r})"

    def sorted(self) -> list[Event]:
        """Members in deterministic (lexicographic) order."""
        return sorted(self)

    # frozenset operators return plain frozensets; re-wrap the common ones so
    # alphabet arithmetic stays in Alphabet.
    def __or__(self, other) -> "Alphabet":
        return Alphabet(frozenset.__or__(self, frozenset(other)))

    def __and__(self, other) -> "Alphabet":
        return Alphabet(frozenset.__and__(self, frozenset(other)))

    def __sub__(self, other) -> "Alphabet":
        return Alphabet(frozenset.__sub__(self, frozenset(other)))

    def __xor__(self, other) -> "Alphabet":
        return Alphabet(frozenset.__xor__(self, frozenset(other)))

    def union(self, *others) -> "Alphabet":
        return Alphabet(frozenset.union(self, *others))

    def intersection(self, *others) -> "Alphabet":
        return Alphabet(frozenset.intersection(self, *others))

    def difference(self, *others) -> "Alphabet":
        return Alphabet(frozenset.difference(self, *others))

    def symmetric_difference(self, other) -> "Alphabet":
        return Alphabet(frozenset.symmetric_difference(self, other))


def composition_alphabet(left: Iterable[Event], right: Iterable[Event]) -> Alphabet:
    """Alphabet of ``left || right`` per the paper's composition definition.

    Shared events synchronize and are hidden; the composite's interface is
    the symmetric difference of the component alphabets:

    ``Σ(A||B) = (Σ_A ∪ Σ_B) − (Σ_A ∩ Σ_B)``
    """
    return Alphabet(left) ^ Alphabet(right)


def shared_events(left: Iterable[Event], right: Iterable[Event]) -> Alphabet:
    """Events on which two components synchronize (hidden in composition)."""
    return Alphabet(left) & Alphabet(right)


@dataclass(frozen=True)
class Interface:
    """The (Int, Ext) event partition of a quotient problem (Section 4).

    * ``ext`` — the service's alphabet: the conversion system's interface to
      its users (``Σ_A = Ext``).
    * ``int`` — the converter's alphabet: the interactions between the
      converter and the existing protocol components (``Σ_C = Int``).

    The composite of existing components ``B`` must satisfy
    ``Σ_B = Int ∪ Ext`` with Int and Ext disjoint.
    """

    int_events: Alphabet
    ext_events: Alphabet

    def __init__(self, int_events: Iterable[Event], ext_events: Iterable[Event]):
        object.__setattr__(self, "int_events", Alphabet(int_events))
        object.__setattr__(self, "ext_events", Alphabet(ext_events))
        overlap = self.int_events & self.ext_events
        if overlap:
            raise AlphabetError(
                f"Int and Ext must be disjoint; both contain {overlap.sorted()}"
            )

    @property
    def full(self) -> Alphabet:
        """``Int ∪ Ext`` — the alphabet required of the composite B."""
        return self.int_events | self.ext_events

    def classify(self, event: Event) -> str:
        """Return ``"int"``, ``"ext"``, or raise for an unknown event."""
        if event in self.int_events:
            return "int"
        if event in self.ext_events:
            return "ext"
        raise AlphabetError(f"event {event!r} is in neither Int nor Ext")

    def __iter__(self) -> Iterator[Event]:
        return iter(self.full.sorted())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Interface(int={self.int_events.sorted()!r}, "
            f"ext={self.ext_events.sorted()!r})"
        )
