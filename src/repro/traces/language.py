"""Trace-language queries over specifications.

Implements the observable-transition relation ``⟶`` of Section 3 and the
trace-membership predicate ``A.t`` on top of it, via on-the-fly subset
simulation (λ-transitions play the role of ε-moves).

Convention: we use the *weak* step ``s ⟹e s' ≡ ∃x,y : s λ* x ∧ x ⇀e y ∧
y λ* s'`` (closure applied before **and after** the visible event).  Trailing
closure does not change any trace set, and it is the reading under which the
paper's ``ψ_A.t`` ("the unique state a such that ∀a' : ↦t a' ≡ a λ* a'")
is well defined for normal-form specifications.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..events import Alphabet, Event
from ..spec.graph import close_under_lambda
from ..spec.spec import Specification, State
from .core import Trace


def initial_closure(spec: Specification) -> frozenset[State]:
    """``{s : s0 λ* s}`` — the states the system may occupy after ``ε``."""
    return close_under_lambda(spec, [spec.initial])


def subset_step(
    spec: Specification, states: Iterable[State], event: Event
) -> frozenset[State]:
    """One weak event step of a λ-closed state set.

    Given a λ-closed set ``Q``, returns the λ-closed set of states reachable
    by taking *event* from any member.  Empty result means the event is not
    a possible continuation.
    """
    targets: set[State] = set()
    for s in states:
        targets |= spec.successors(s, event)
    if not targets:
        return frozenset()
    return close_under_lambda(spec, targets)


def states_after(spec: Specification, t: Iterable[Event]) -> frozenset[State]:
    """``{s : ↦t s}`` — states the system may occupy after trace *t*.

    Returns the empty set when *t* is not a trace of the specification.
    """
    current = initial_closure(spec)
    for e in t:
        current = subset_step(spec, current, e)
        if not current:
            return frozenset()
    return current


def accepts(spec: Specification, t: Iterable[Event]) -> bool:
    """The predicate ``A.t`` — is *t* a trace of the specification?"""
    return bool(states_after(spec, t))


def enabled_after(spec: Specification, t: Iterable[Event]) -> Alphabet:
    """Events that can extend trace *t* (possible next observations).

    This is ``∪ { τ*.s : ↦t s }`` restricted to events whose weak step is
    nonempty; since ``states_after`` is λ-closed it is simply the union of
    ``τ.s`` over the member states.
    """
    states = states_after(spec, t)
    events: set[Event] = set()
    for s in states:
        events |= spec.enabled(s)
    return Alphabet(events)


def enumerate_traces(
    spec: Specification, max_length: int
) -> Iterator[Trace]:
    """Yield every trace of the spec with length ≤ *max_length*.

    Traces are produced in length-lexicographic order, deterministically.
    The walk is over λ-closed subset states, so it terminates even for specs
    whose state graph has cycles; the number of yielded traces can still be
    exponential in *max_length*.
    """
    start = initial_closure(spec)
    yield ()
    frontier: list[tuple[Trace, frozenset[State]]] = [((), start)]
    for _ in range(max_length):
        next_frontier: list[tuple[Trace, frozenset[State]]] = []
        for t, states in frontier:
            events: set[Event] = set()
            for s in states:
                events |= spec.enabled(s)
            for e in sorted(events):
                nxt = subset_step(spec, states, e)
                if nxt:
                    t2 = t + (e,)
                    yield t2
                    next_frontier.append((t2, nxt))
        frontier = next_frontier
        if not frontier:
            return


def language_upto(spec: Specification, max_length: int) -> frozenset[Trace]:
    """The (finite) set of traces with length ≤ *max_length*."""
    return frozenset(enumerate_traces(spec, max_length))


def longest_trace_bounded(spec: Specification, bound: int) -> Trace:
    """A longest trace not exceeding *bound* (deterministic choice).

    Useful in tests to probe how deep a spec's behaviour goes.
    """
    best: Trace = ()
    for t in enumerate_traces(spec, bound):
        if len(t) > len(best):
            best = t
    return best


def sample_trace(
    spec: Specification, length: int, seed: int = 0
) -> Trace | None:
    """A pseudo-random trace of exactly *length*, or None if none exists.

    Deterministic for a given seed (uses a simple LCG rather than the
    global ``random`` module so library behaviour never depends on ambient
    RNG state).
    """
    state = (seed * 6364136223846793005 + 1442695040888963407) % 2**64

    def next_index(n: int) -> int:
        nonlocal state
        state = (state * 6364136223846793005 + 1442695040888963407) % 2**64
        return (state >> 33) % n

    def go(states: frozenset[State], remaining: int, t: Trace) -> Trace | None:
        if remaining == 0:
            return t
        events: set[Event] = set()
        for s in states:
            events |= spec.enabled(s)
        options = sorted(events)
        if not options:
            return None
        # rotate through the options starting at a pseudo-random offset so
        # failures backtrack deterministically
        offset = next_index(len(options))
        for k in range(len(options)):
            e = options[(offset + k) % len(options)]
            nxt = subset_step(spec, states, e)
            if not nxt:
                continue
            result = go(nxt, remaining - 1, t + (e,))
            if result is not None:
                return result
        return None

    return go(initial_closure(spec), length, ())
