"""The projection functions ``i`` and ``o`` of Section 4.

A trace ``t`` of the composite ``B`` (over ``Int ∪ Ext``) decomposes into

* ``i.t`` — its projection onto the converter interface ``Int``, and
* ``o.t`` — its projection onto the environment interface ``Ext``.

Both are defined by erasing the events of the other set while preserving
order.  This module provides the general erasing projection plus the
``i``/``o`` pair bound to an :class:`~repro.events.Interface`.
"""

from __future__ import annotations

from typing import Iterable

from ..errors import AlphabetError
from ..events import Event, Interface
from .core import Trace


def project(t: Iterable[Event], onto: Iterable[Event]) -> Trace:
    """Erase from *t* every event not in *onto*, preserving order.

    >>> project(("acc", "-D", "del", "+A"), {"-D", "+A"})
    ('-D', '+A')
    """
    keep = frozenset(onto)
    return tuple(e for e in t if e in keep)


def i_projection(interface: Interface, t: Iterable[Event]) -> Trace:
    """``i.t`` — the projection of *t* onto ``Int``."""
    return project(t, interface.int_events)


def o_projection(interface: Interface, t: Iterable[Event]) -> Trace:
    """``o.t`` — the projection of *t* onto ``Ext``."""
    return project(t, interface.ext_events)


def split(interface: Interface, t: Iterable[Event]) -> tuple[Trace, Trace]:
    """Return ``(i.t, o.t)`` in one pass, validating event membership.

    Raises :class:`AlphabetError` if *t* contains an event outside
    ``Int ∪ Ext`` — a composite trace must lie entirely in the interface.
    """
    int_part: list[Event] = []
    ext_part: list[Event] = []
    for e in t:
        kind = interface.classify(e)  # raises AlphabetError for unknown events
        if kind == "int":
            int_part.append(e)
        else:
            ext_part.append(e)
    return tuple(int_part), tuple(ext_part)


def interleavings_count(int_len: int, ext_len: int) -> int:
    """Number of traces projecting to given Int/Ext lengths: C(n+m, n).

    Useful for sanity checks in tests: the fibres of ``(i, o)`` over a pair
    of projections have exactly binomial(n+m, n) order-preserving merges.
    """
    from math import comb

    if int_len < 0 or ext_len < 0:
        raise AlphabetError("trace lengths must be nonnegative")
    return comb(int_len + ext_len, int_len)


def merges(int_part: Trace, ext_part: Trace) -> list[Trace]:
    """All order-preserving interleavings of two disjoint-alphabet traces.

    The inverse image of ``(i, o)``: every trace ``t`` with ``i.t = int_part``
    and ``o.t = ext_part`` (assuming the two parts use disjoint alphabets).
    Exponential in general — intended for tests and small examples.
    """
    out: list[Trace] = []

    def go(prefix: tuple[Event, ...], xs: Trace, ys: Trace) -> None:
        if not xs and not ys:
            out.append(prefix)
            return
        if xs:
            go(prefix + (xs[0],), xs[1:], ys)
        if ys:
            go(prefix + (ys[0],), xs, ys[1:])

    go((), tuple(int_part), tuple(ext_part))
    return out
