"""Traces: finite sequences of external events (Section 3).

A trace represents a possible behaviour of a system as observed by its
environment — the sequence of labels along a finite directed path from the
initial state.  Trace sets are prefix-closed and always contain the empty
trace ``ε``.

Traces are plain tuples of event names; this module provides the small
algebra the paper uses (concatenation by juxtaposition, prefixes) plus
rendering helpers.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..events import Event

Trace = tuple[Event, ...]
"""A finite sequence of events."""

EPSILON: Trace = ()
"""The empty trace ``ε`` — a possible behaviour of every system."""


def trace(*events: Event) -> Trace:
    """Build a trace from event arguments: ``trace("acc", "del")``."""
    return tuple(events)


def concat(*parts: Iterable[Event]) -> Trace:
    """Concatenate traces/events (the paper's juxtaposition ``te``)."""
    out: list[Event] = []
    for part in parts:
        out.extend(part)
    return tuple(out)


def prefixes(t: Trace) -> Iterator[Trace]:
    """All prefixes of *t*, shortest first, including ``ε`` and *t* itself."""
    for i in range(len(t) + 1):
        yield t[:i]


def proper_prefixes(t: Trace) -> Iterator[Trace]:
    """All prefixes of *t* except *t* itself."""
    for i in range(len(t)):
        yield t[:i]


def is_prefix(p: Trace, t: Trace) -> bool:
    """True if *p* is a (not necessarily proper) prefix of *t*."""
    return len(p) <= len(t) and t[: len(p)] == tuple(p)


def format_trace(t: Trace) -> str:
    """Render a trace for messages: ``⟨acc.del.acc⟩`` (``⟨⟩`` for ε)."""
    return "⟨" + ".".join(t) + "⟩"


def prefix_close(traces: Iterable[Trace]) -> frozenset[Trace]:
    """The prefix closure of a set of traces (always contains ``ε``)."""
    closed: set[Trace] = {EPSILON}
    for t in traces:
        t = tuple(t)
        for p in prefixes(t):
            closed.add(p)
    return frozenset(closed)


def is_prefix_closed(traces: Iterable[Trace]) -> bool:
    """True if the given trace set is prefix-closed (and contains ``ε``)."""
    traces = {tuple(t) for t in traces}
    if EPSILON not in traces:
        return False
    return all(t[:-1] in traces for t in traces if t)
