"""Fault models and resilience evaluation.

The paper's only fault model is the hand-built lossy channel of Fig. 10
(:func:`repro.protocols.channels.lossy_duplex_channel`).  This package
generalizes it into a catalogue of composable, severity-parameterized
**specification transformers** (:mod:`repro.faults.models`) and an
analytical **resilience harness** (:mod:`repro.faults.resilience`) that
sweeps a grid of fault models over a conversion system and reports, per
cell, whether the derived converter survives — and when it does not,
whether the quotient can be re-derived for the faultier world or no
converter exists at all.

See ``docs/robustness.md`` for the catalogue and the matrix schema.
"""

from .models import (
    FAULT_KINDS,
    FaultModel,
    apply_faults,
    corruption,
    crash_restart,
    duplication,
    fault_model,
    loss,
    reorder,
)
from .resilience import (
    ResilienceCell,
    ResilienceMatrix,
    default_grid,
    evaluate_resilience,
    sweep_fingerprint,
)

__all__ = [
    "FAULT_KINDS",
    "FaultModel",
    "ResilienceCell",
    "ResilienceMatrix",
    "apply_faults",
    "corruption",
    "crash_restart",
    "default_grid",
    "duplication",
    "evaluate_resilience",
    "fault_model",
    "loss",
    "reorder",
    "sweep_fingerprint",
]
