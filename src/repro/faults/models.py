"""Severity-parameterized fault transformers over specifications.

Each transformer is a **pure function** ``Specification -> Specification``:
it returns a new, valid specification modeling the original component
subjected to a class of faults, at an integer *severity*.  Severity ``0``
is always the identity; severity ``1`` is the mildest non-trivial fault
(for :func:`loss`, exactly the paper's Fig. 10 model); higher severities
strictly widen the fault behavior.  Transformers compose by ordinary
function composition (see :func:`apply_faults`).

Catalogue
---------

``loss``
    Receive-enabled states may internally drop their message into a
    ``lost`` state from which a (never premature) *timeout* returns to the
    initial state.  Severity ≥ 2 additionally allows **silent** loss (an
    internal move from ``lost`` straight back to the initial state, with
    no timeout) — the failure mode retransmission protocols cannot detect.
    Idempotent: ``loss(loss(s)) == loss(s)`` at equal severity/timeout.
``duplication``
    Each receive may leave up to *severity* ghost copies behind: delivery
    branches into a chain of redelivery states, each of which may also
    silently evaporate (so extra deliveries are possible, never forced).
``reorder``
    Rebuilds the component as a capacity-*severity* **bag** channel over
    its matched ``-x``/``+x`` message alphabet: any held message may be
    delivered next, so two messages in flight can cross.  Requires a
    channel-shaped alphabet (every prefixed event matched), else
    :class:`~repro.errors.FaultModelError`.
``corruption``
    A held message may be internally garbled and delivered as one of the
    *severity* nearest **other** receive events of the alphabet
    (cross-message delivery).
``crash_restart``
    The component may crash at any moment and restart from its initial
    state, at most *severity* times: states become ``(s, crash_count)``
    planes joined by internal crash edges.

Alphabet discipline: :func:`loss` adds its *timeout* event; every other
transformer preserves the external alphabet exactly.  This contract is
what the Hypothesis property suite pins down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from .. import obs
from ..errors import FaultModelError
from ..events import Event, is_receive, is_send, message_of
from ..spec.spec import Specification, State

__all__ = [
    "FAULT_KINDS",
    "FaultModel",
    "apply_faults",
    "corruption",
    "crash_restart",
    "duplication",
    "fault_model",
    "loss",
    "reorder",
]

#: State label of the loss state, shared with the hand-built channels so
#: ``loss`` applied to a reliable channel reproduces the lossy one exactly.
LOST = "lost"


def _check_severity(kind: str, severity: int) -> None:
    if not isinstance(severity, int) or isinstance(severity, bool):
        raise FaultModelError(
            f"{kind}: severity must be an int, got {severity!r}"
        )
    if severity < 0:
        raise FaultModelError(
            f"{kind}: severity must be >= 0, got {severity}"
        )


def _receive_events(spec: Specification) -> list[Event]:
    """The receive (``+x``) events of the alphabet, sorted."""
    return sorted(e for e in spec.alphabet if is_receive(e))


# ----------------------------------------------------------------------
# loss (Fig. 10, generalized)
# ----------------------------------------------------------------------
def loss(
    spec: Specification, severity: int = 1, *, timeout: Event = "timeout"
) -> Specification:
    """Message loss with a never-premature *timeout* (the paper's model).

    Every **loss-prone** state — one enabling at least one receive event,
    i.e. currently holding something deliverable — gains an internal
    transition to the ``lost`` state; ``lost`` enables only *timeout*,
    which returns to the initial state.  Applied to
    :func:`repro.protocols.channels.reliable_duplex_channel` this yields
    :func:`~repro.protocols.channels.lossy_duplex_channel` byte-for-byte.

    Severity ≥ 2 adds **silent loss**: an internal move ``lost λ initial``
    that recovers the component without ever signaling the timeout, so the
    loss becomes undetectable to a retransmission protocol (this is what
    typically breaks progress).

    Declares *timeout* into the alphabet.  Idempotent at equal
    severity/timeout: the ``lost`` state enables no receive, so it is
    never itself loss-prone.
    """
    _check_severity("loss", severity)
    if severity == 0:
        return spec
    prone = [s for s in spec.sorted_states() if any(
        is_receive(e) for e in spec.enabled(s)
    )]
    if not prone:
        # nothing deliverable can be lost; only the declared timeout is added
        return Specification(
            spec.name,
            spec.states,
            spec.alphabet | {timeout},
            spec.external,
            spec.internal,
            spec.initial,
        )
    states = set(spec.states)
    states.add(LOST)
    external = set(spec.external)
    external.add((LOST, timeout, spec.initial))
    internal = set(spec.internal)
    for s in prone:
        if s != LOST:
            internal.add((s, LOST))
    if severity >= 2 and LOST != spec.initial:
        internal.add((LOST, spec.initial))
    return Specification(
        spec.name,
        states,
        spec.alphabet | {timeout},
        external,
        internal,
        spec.initial,
    )


# ----------------------------------------------------------------------
# duplication
# ----------------------------------------------------------------------
def duplication(spec: Specification, severity: int = 1) -> Specification:
    """Up to *severity* extra deliveries per receive, never forced.

    Each receive transition ``s --+x--> s'`` branches: the delivery may
    instead move to a ghost state holding ``i`` further copies
    (``("dup", s, +x, s', i)``); each ghost may redeliver ``+x`` (down to
    ``s'`` when the last copy goes) **or** silently evaporate to ``s'``
    (internal), so duplication widens behavior without forcing the
    environment to accept redeliveries.  The alphabet is unchanged.
    """
    _check_severity("duplication", severity)
    if severity == 0:
        return spec
    states = set(spec.states)
    external = set(spec.external)
    internal = set(spec.internal)
    for s, e, s2 in spec.external:
        if not is_receive(e):
            continue
        ghosts = [("dup", s, e, s2, i) for i in range(1, severity + 1)]
        states.update(ghosts)
        # first delivery may leave `severity` copies behind
        external.add((s, e, ghosts[-1]))
        for i, ghost in enumerate(ghosts):
            nxt = s2 if i == 0 else ghosts[i - 1]
            external.add((ghost, e, nxt))
            internal.add((ghost, s2))
    return Specification(
        spec.name, states, spec.alphabet, external, internal, spec.initial
    )


# ----------------------------------------------------------------------
# reorder
# ----------------------------------------------------------------------
def reorder(spec: Specification, severity: int = 1) -> Specification:
    """A capacity-*severity* bag channel over the matched message alphabet.

    Holding several messages, **any** of them may be delivered next — the
    defining behavior of a reordering medium.  The component is rebuilt
    from its alphabet: every ``-x`` must have a matching ``+x`` (and vice
    versa), else :class:`~repro.errors.FaultModelError` — reordering is
    only meaningful for channel-shaped specifications.  Unprefixed events
    (e.g. a declared timeout) stay in the alphabet, refused in every
    state, so composition interfaces are preserved.

    At severity 1 the bag holds one message, i.e. a reliable capacity-one
    channel — reordering needs at least two messages in flight to bite.
    """
    _check_severity("reorder", severity)
    if severity == 0:
        return spec
    sends = {message_of(e) for e in spec.alphabet if is_send(e)}
    receives = {message_of(e) for e in spec.alphabet if is_receive(e)}
    if sends != receives:
        unmatched = sorted(sends ^ receives)
        raise FaultModelError(
            f"reorder: {spec.name} is not channel-shaped; unmatched "
            f"messages {unmatched} (every -x needs a +x and vice versa)"
        )
    if not sends:
        raise FaultModelError(
            f"reorder: {spec.name} has no -x/+x message events to reorder"
        )
    messages = sorted(sends)
    capacity = severity

    empty: tuple = ()
    states: set[State] = {empty}
    external: set[tuple[State, Event, State]] = set()
    frontier = [empty]
    while frontier:
        bag = frontier.pop()
        if len(bag) < capacity:
            for m in messages:
                nxt = tuple(sorted(bag + (m,)))
                external.add((bag, f"-{m}", nxt))
                if nxt not in states:
                    states.add(nxt)
                    frontier.append(nxt)
        for m in sorted(set(bag)):
            held = list(bag)
            held.remove(m)
            nxt = tuple(held)
            external.add((bag, f"+{m}", nxt))
    return Specification(
        spec.name, states, spec.alphabet, external, (), empty
    )


# ----------------------------------------------------------------------
# corruption
# ----------------------------------------------------------------------
def corruption(spec: Specification, severity: int = 1) -> Specification:
    """Cross-message delivery: a held message may garble into another.

    For each receive transition ``s --+x--> s'`` the component may
    internally corrupt the message and deliver one of the *severity*
    nearest **other** receive events ``+y`` of the alphabet instead
    (nearest in the sorted receive-event list, ties toward the smaller
    event), reaching the same ``s'``.  The alphabet is unchanged; a
    single-message component has nothing to garble into and is returned
    unchanged.
    """
    _check_severity("corruption", severity)
    if severity == 0:
        return spec
    receives = _receive_events(spec)
    if len(receives) < 2:
        return spec
    pos = {e: i for i, e in enumerate(receives)}
    states = set(spec.states)
    external = set(spec.external)
    internal = set(spec.internal)
    changed = False
    for s, e, s2 in spec.external:
        if not is_receive(e) or e not in pos:
            continue
        i = pos[e]
        others = sorted(
            (r for r in receives if r != e),
            key=lambda r: (abs(pos[r] - i), r),
        )[:severity]
        for e2 in others:
            corrupt = ("corrupt", s, e, s2, e2)
            states.add(corrupt)
            internal.add((s, corrupt))
            external.add((corrupt, e2, s2))
            changed = True
    if not changed:
        return spec
    return Specification(
        spec.name, states, spec.alphabet, external, internal, spec.initial
    )


# ----------------------------------------------------------------------
# crash-restart
# ----------------------------------------------------------------------
def crash_restart(spec: Specification, severity: int = 1) -> Specification:
    """The component may crash and restart, at most *severity* times.

    States become ``(s, crashes)`` planes for ``crashes`` in
    ``0..severity``; every transition is replicated within each plane, and
    from any state the component may internally crash into
    ``(initial, crashes + 1)`` — losing all protocol state it held.  The
    alphabet is unchanged.
    """
    _check_severity("crash_restart", severity)
    if severity == 0:
        return spec
    planes = range(severity + 1)
    states = {(s, c) for s in spec.states for c in planes}
    external = {
        ((s, c), e, (s2, c)) for s, e, s2 in spec.external for c in planes
    }
    internal = {
        ((s, c), (s2, c)) for s, s2 in spec.internal for c in planes
    }
    for c in range(severity):
        for s in spec.states:
            internal.add(((s, c), (spec.initial, c + 1)))
    return Specification(
        spec.name, states, spec.alphabet, external, internal, (spec.initial, 0)
    )


# ----------------------------------------------------------------------
# the registry and the value-object form
# ----------------------------------------------------------------------
_TRANSFORMERS: dict[str, Callable[..., Specification]] = {
    "loss": loss,
    "duplication": duplication,
    "reorder": reorder,
    "corruption": corruption,
    "crash_restart": crash_restart,
}

FAULT_KINDS: tuple[str, ...] = tuple(sorted(_TRANSFORMERS))
"""The registered fault kinds, sorted."""


@dataclass(frozen=True)
class FaultModel:
    """A named, parameterized fault: ``kind`` at ``severity``.

    A frozen value object so grids of models hash and sort; ``params``
    holds transformer keyword arguments (e.g. ``loss``'s *timeout*) as a
    sorted tuple of pairs.
    """

    kind: str
    severity: int
    params: tuple[tuple[str, object], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in _TRANSFORMERS:
            raise FaultModelError(
                f"unknown fault kind {self.kind!r}; "
                f"known: {', '.join(FAULT_KINDS)}"
            )
        _check_severity(self.kind, self.severity)

    @property
    def label(self) -> str:
        """Stable display label, e.g. ``loss@2``."""
        return f"{self.kind}@{self.severity}"

    def apply(self, spec: Specification) -> Specification:
        """Transform *spec* under this fault (pure; counts ``faults.applied``)."""
        obs.add("faults.applied", 1)
        obs.add(f"faults.applied.{self.kind}", 1)
        return _TRANSFORMERS[self.kind](
            spec, self.severity, **dict(self.params)
        )

    def to_json_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "params": {k: v for k, v in self.params},
        }


def fault_model(kind: str, severity: int = 1, **params: object) -> FaultModel:
    """Build a :class:`FaultModel` (keyword params sorted for hashability)."""
    return FaultModel(kind, severity, tuple(sorted(params.items())))


def apply_faults(
    spec: Specification, models: Iterable[FaultModel] | Sequence[FaultModel]
) -> Specification:
    """Apply *models* to *spec* left to right (function composition)."""
    for model in models:
        spec = model.apply(spec)
    return spec
