"""Analytical resilience evaluation: sweep fault models over a converter.

Given a service ``A``, the components of a conversion system, and a
derived converter ``C``, :func:`evaluate_resilience` asks, for every fault
model in a grid: *does the fixed converter still work when one component
degrades, and if not, could a converter be re-derived for the degraded
world?*  Each cell of the resulting :class:`ResilienceMatrix` carries one
of five verdicts:

``tolerated``
    ``B′ ‖ C ⊨ A`` still holds — the existing converter absorbs the fault.
``re-derivable``
    The fixed converter fails, but :func:`repro.quotient.solve_quotient`
    finds a (different) converter for the faulted components.
``safety-broken`` / ``progress-broken``
    The fixed converter fails in the named phase and **no** converter
    exists for the faulted world (or re-derivation was skipped or ran out
    of budget) — the fault is fatal to the conversion, not just to this
    converter.  Failure cells carry the counterexample trace or progress
    violation from the satisfaction check.
``no-converter``
    The cell could not be evaluated at all (e.g. the fault model does not
    apply to the target component).

Verdict precedence is ``tolerated`` > ``re-derivable`` > phase-broken:
the matrix reports the *best* outcome available at each cell.

Every sweep is instrumented with ``faults.*`` obs counters; solves accept
a :class:`~repro.quotient.budget.Budget` so a fault-inflated state space
degrades into a recorded ``budget-exceeded`` note instead of a runaway.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from .. import obs
from ..compose.binary import compose
from ..compose.nary import compose_many
from ..errors import (
    BudgetExceeded,
    FaultModelError,
    InterruptRequested,
    ReproError,
)
from ..events import is_receive, is_send, message_of
from ..lint.engine import lint_checkpoint
from ..obs.progress import current_reporter
from ..persist.checkpoint import (
    KIND_RESILIENCE,
    Checkpoint,
    resilience_fingerprint,
)
from ..persist.store import load_checkpoint, save_checkpoint
from ..quotient.budget import Budget
from ..quotient.solve import solve_quotient
from ..satisfy.verify import satisfies
from ..spec.spec import Specification
from ..traces.core import Trace, format_trace
from .models import FaultModel, fault_model

if TYPE_CHECKING:
    from ..persist.interrupt import InterruptController

__all__ = [
    "ResilienceCell",
    "ResilienceMatrix",
    "default_grid",
    "evaluate_resilience",
    "sweep_fingerprint",
]

VERDICTS = (
    "tolerated",
    "re-derivable",
    "safety-broken",
    "progress-broken",
    "no-converter",
)


def default_grid(
    severities: Sequence[int] = (1, 2), *, timeout: str = "timeout"
) -> tuple[FaultModel, ...]:
    """The standard sweep: every fault kind at each severity.

    ``loss`` is parameterized with *timeout* so its added event matches
    the protocol under test (e.g. the AB protocol's ``timeout``).
    """
    grid: list[FaultModel] = []
    for severity in severities:
        grid.append(fault_model("loss", severity, timeout=timeout))
        grid.append(fault_model("duplication", severity))
        grid.append(fault_model("reorder", severity))
        grid.append(fault_model("corruption", severity))
        grid.append(fault_model("crash_restart", severity))
    return tuple(grid)


@dataclass(frozen=True)
class ResilienceCell:
    """One (fault model × target) evaluation of the matrix."""

    model: FaultModel
    target: str
    verdict: str
    fixed_holds: bool
    failure_phase: str | None = None
    counterexample: Trace | None = None
    rederive_attempted: bool = False
    rederive_exists: bool | None = None
    rederived_states: int | None = None
    budget_exceeded: dict | None = None
    detail: str = ""

    def to_json_dict(self) -> dict:
        return {
            "model": self.model.to_json_dict(),
            "target": self.target,
            "verdict": self.verdict,
            "fixed": {
                "holds": self.fixed_holds,
                "failure_phase": self.failure_phase,
                "counterexample": (
                    list(self.counterexample)
                    if self.counterexample is not None
                    else None
                ),
            },
            "rederive": {
                "attempted": self.rederive_attempted,
                "exists": self.rederive_exists,
                "states": self.rederived_states,
                "budget_exceeded": self.budget_exceeded,
            },
            "detail": self.detail,
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "ResilienceCell":
        """Rebuild a cell from :meth:`to_json_dict` output.

        This is what makes resilience checkpoints resumable: completed
        cells round-trip through JSON exactly, so a resumed sweep's
        matrix is equal to the uninterrupted one's.
        """
        model_doc = doc["model"]
        fixed = doc["fixed"]
        rederive = doc["rederive"]
        counterexample = fixed.get("counterexample")
        return cls(
            model=fault_model(
                model_doc["kind"],
                model_doc["severity"],
                **model_doc.get("params", {}),
            ),
            target=doc["target"],
            verdict=doc["verdict"],
            fixed_holds=fixed["holds"],
            failure_phase=fixed.get("failure_phase"),
            counterexample=(
                tuple(counterexample) if counterexample is not None else None
            ),
            rederive_attempted=rederive["attempted"],
            rederive_exists=rederive["exists"],
            rederived_states=rederive["states"],
            budget_exceeded=rederive["budget_exceeded"],
            detail=doc.get("detail", ""),
        )


@dataclass(frozen=True)
class ResilienceMatrix:
    """The full sweep: cells in grid order, plus identifying context."""

    service: str
    converter: str
    target: str
    cells: tuple[ResilienceCell, ...]

    def cell(self, kind: str, severity: int) -> ResilienceCell:
        """The cell for ``kind@severity`` (:class:`KeyError` if absent)."""
        for c in self.cells:
            if c.model.kind == kind and c.model.severity == severity:
                return c
        raise KeyError(f"{kind}@{severity}")

    def counts(self) -> dict[str, int]:
        """Verdict histogram over the cells (only nonzero entries)."""
        out: dict[str, int] = {}
        for c in self.cells:
            out[c.verdict] = out.get(c.verdict, 0) + 1
        return dict(sorted(out.items()))

    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """The matrix as a deterministic text table with failure details."""
        kinds = list(dict.fromkeys(c.model.kind for c in self.cells))
        severities = sorted({c.model.severity for c in self.cells})
        by_key = {(c.model.kind, c.model.severity): c for c in self.cells}

        lines = [
            f"resilience matrix: service={self.service} "
            f"converter={self.converter} target={self.target}"
        ]
        width = max(12, *(len(k) for k in kinds)) + 2
        cell_w = max(len(v) for v in VERDICTS) + 2
        header = "fault".ljust(width) + "".join(
            f"sev {s}".ljust(cell_w) for s in severities
        )
        lines.append(header)
        lines.append("-" * len(header.rstrip()))
        for kind in kinds:
            row = kind.ljust(width)
            for s in severities:
                c = by_key.get((kind, s))
                row += (c.verdict if c else "-").ljust(cell_w)
            lines.append(row.rstrip())
        summary = ", ".join(f"{v}: {n}" for v, n in self.counts().items())
        lines.append("")
        lines.append(f"verdicts: {summary}")

        details = [c for c in self.cells if c.detail]
        if details:
            lines.append("")
            lines.append("details:")
            for c in details:
                lines.append(f"  {c.model.label}: {c.detail}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        return {
            "version": 1,
            "service": self.service,
            "converter": self.converter,
            "target": self.target,
            "verdict_counts": self.counts(),
            "cells": [c.to_json_dict() for c in self.cells],
        }


def _is_channel_shaped(spec: Specification) -> bool:
    """A channel carries every message in both directions (``-x`` and ``+x``).

    Mere presence of sends and receives is not enough — a protocol
    endpoint sends data and receives acknowledgements, so its message
    sets differ.  A channel's coincide.
    """
    sends = {message_of(e) for e in spec.alphabet if is_send(e)}
    receives = {message_of(e) for e in spec.alphabet if is_receive(e)}
    return bool(sends) and sends == receives


def _resolve_target(
    components: Sequence[Specification], target: int | str | None
) -> int:
    if isinstance(target, int):
        if not 0 <= target < len(components):
            raise FaultModelError(
                f"target index {target} out of range for "
                f"{len(components)} components"
            )
        return target
    if isinstance(target, str):
        for i, c in enumerate(components):
            if c.name == target:
                return i
        raise FaultModelError(
            f"no component named {target!r} "
            f"(have: {[c.name for c in components]})"
        )
    for i, c in enumerate(components):
        if _is_channel_shaped(c):
            return i
    raise FaultModelError(
        "no channel-shaped component to fault; pass target= explicitly"
    )


def _evaluate_cell(
    service: Specification,
    components: Sequence[Specification],
    target_idx: int,
    converter: Specification,
    model: FaultModel,
    *,
    int_events: Iterable[str] | None,
    rederive: bool,
    budget: Budget | None,
    interrupt: "InterruptController | None" = None,
) -> ResilienceCell:
    target_name = components[target_idx].name
    try:
        faulted = model.apply(components[target_idx])
    except FaultModelError as exc:
        obs.add("faults.cells_skipped", 1)
        return ResilienceCell(
            model=model,
            target=target_name,
            verdict="no-converter",
            fixed_holds=False,
            detail=f"fault not applicable: {exc}",
        )

    parts = list(components)
    parts[target_idx] = faulted
    try:
        composite_b = compose_many(
            parts,
            name=f"B'[{model.label}]",
            preflight=False,
            budget=budget,
            interrupt=interrupt,
        )
        impl = compose(composite_b, converter, budget=budget, interrupt=interrupt)
        report = satisfies(impl, service)
    except InterruptRequested:
        # interruption ends the whole sweep (the caller checkpoints the
        # completed cells); never degrade it into a per-cell verdict
        raise
    except BudgetExceeded as exc:
        obs.add("faults.budget_exceeded", 1)
        return ResilienceCell(
            model=model,
            target=target_name,
            verdict="no-converter",
            fixed_holds=False,
            budget_exceeded=exc.to_json_dict(),
            detail=f"check interrupted: {exc}",
        )
    except ReproError as exc:
        obs.add("faults.cells_skipped", 1)
        return ResilienceCell(
            model=model,
            target=target_name,
            verdict="no-converter",
            fixed_holds=False,
            detail=f"check failed: {exc}",
        )

    if report.holds:
        obs.add("faults.tolerated", 1)
        return ResilienceCell(
            model=model,
            target=target_name,
            verdict="tolerated",
            fixed_holds=True,
        )

    if not report.safety.holds:
        failure_phase = "safety"
        counterexample: Trace | None = report.safety.counterexample
        failure_note = (
            "fixed converter breaks safety: performs "
            f"{format_trace(counterexample or ())}"
        )
    else:
        failure_phase = "progress"
        # ProgressResult.__bool__ is its verdict, so test for presence
        # explicitly — a failed check is falsy but carries the violation.
        violation = (
            report.progress.violation if report.progress is not None else None
        )
        counterexample = violation.trace if violation is not None else None
        failure_note = "fixed converter breaks progress"
        if violation is not None:
            failure_note += (
                f" after {format_trace(violation.trace)} "
                f"(offers only {{{','.join(sorted(violation.offered))}}})"
            )

    rederive_exists: bool | None = None
    rederived_states: int | None = None
    budget_info: dict | None = None
    if rederive:
        try:
            result = solve_quotient(
                service,
                composite_b,
                int_events=int_events,
                budget=budget,
                interrupt=interrupt,
            )
        except InterruptRequested:
            raise
        except BudgetExceeded as exc:
            obs.add("faults.budget_exceeded", 1)
            budget_info = exc.to_json_dict()
        except ReproError:
            rederive_exists = False
        else:
            rederive_exists = result.exists
            if result.exists:
                assert result.converter is not None
                rederived_states = len(result.converter.states)

    if rederive_exists:
        obs.add("faults.rederivable", 1)
        verdict = "re-derivable"
        detail = (
            f"{failure_note}; re-derived converter exists "
            f"({rederived_states} states)"
        )
    else:
        obs.add(f"faults.{failure_phase}_broken", 1)
        verdict = f"{failure_phase}-broken"
        if budget_info is not None:
            detail = f"{failure_note}; re-derivation exceeded budget"
        elif rederive:
            detail = f"{failure_note}; no converter exists for this fault"
        else:
            detail = f"{failure_note}; re-derivation not attempted"

    return ResilienceCell(
        model=model,
        target=target_name,
        verdict=verdict,
        fixed_holds=False,
        failure_phase=failure_phase,
        counterexample=counterexample,
        rederive_attempted=rederive,
        rederive_exists=rederive_exists,
        rederived_states=rederived_states,
        budget_exceeded=budget_info,
        detail=detail,
    )


def _sweep_checkpoint(
    fingerprint: str, cells: Sequence[ResilienceCell], total: int
) -> Checkpoint:
    return Checkpoint(
        kind=KIND_RESILIENCE,
        fingerprint=fingerprint,
        phase="sweep",
        payload={
            "cells": [c.to_json_dict() for c in cells],
            "total": total,
        },
    )


def _load_completed_cells(
    checkpoint_path: str, fingerprint: str, total: int
) -> list[ResilienceCell]:
    """The completed cells from a sweep checkpoint, validated for resume."""
    ckpt = load_checkpoint(checkpoint_path)
    lint_checkpoint(
        kind=ckpt.kind,
        phase=ckpt.phase,
        fingerprint=ckpt.fingerprint,
        expected_kind=KIND_RESILIENCE,
        expected_fingerprint=fingerprint,
    ).raise_if_errors()
    docs = ckpt.payload.get("cells", [])[:total]
    cells = [ResilienceCell.from_json_dict(doc) for doc in docs]
    obs.add("faults.resume.cells_skipped", len(cells))
    obs.add("faults.resume.resumed", 1)
    return cells


def sweep_fingerprint(
    service: Specification,
    components: Sequence[Specification],
    converter: Specification,
    grid: Sequence[FaultModel] | None = None,
    target: int | str | None = None,
    *,
    timeout: str = "timeout",
) -> str:
    """The fingerprint :func:`evaluate_resilience` would checkpoint under.

    Resolves *target* and defaults *grid* exactly like the sweep itself,
    so callers (the CLI's run ledger) can key records without starting
    the evaluation.
    """
    target_idx = _resolve_target(components, target)
    models = tuple(grid) if grid is not None else default_grid(timeout=timeout)
    return resilience_fingerprint(
        service, components, converter, models, target_idx
    )


def evaluate_resilience(
    service: Specification,
    components: Sequence[Specification],
    converter: Specification,
    *,
    int_events: Iterable[str] | None = None,
    target: int | str | None = None,
    grid: Sequence[FaultModel] | None = None,
    rederive: bool = True,
    budget: Budget | None = None,
    timeout: str = "timeout",
    interrupt: "InterruptController | None" = None,
    checkpoint: str | None = None,
    resume: bool = False,
    workers: int | None = None,
) -> ResilienceMatrix:
    """Sweep *grid* over one component and judge the converter per cell.

    Parameters
    ----------
    service, components, converter:
        The conversion system under evaluation: ``A``, the unfaulted parts
        of ``B``, and the derived converter ``C``.
    int_events:
        Declared Int events for re-derivation (as for
        :func:`~repro.quotient.solve_quotient`).
    target:
        Which component to fault: an index, a component name, or ``None``
        to pick the first channel-shaped component (one with both ``-x``
        and ``+x`` events).
    grid:
        The fault models to sweep (default: :func:`default_grid` at
        severities 1 and 2, with *timeout*).
    rederive:
        Attempt :func:`~repro.quotient.solve_quotient` on cells where the
        fixed converter fails (default on); when off, failing cells report
        the failure phase without the re-derivability refinement.
    budget:
        Optional :class:`~repro.quotient.budget.Budget` applied to every
        composition and solve in the sweep; a tripped budget is recorded
        in the cell instead of propagating.
    interrupt:
        Optional :class:`~repro.persist.InterruptController`: a pending
        SIGINT/deadline ends the sweep with
        :class:`~repro.errors.InterruptRequested` carrying a sweep-level
        checkpoint of the completed cells.
    checkpoint:
        Optional file path.  After every computed cell the sweep durably
        snapshots its completed cells there (atomic write, previous good
        snapshot kept as ``.prev``), so a crash — not just a cooperative
        interrupt — loses at most the in-flight cell.
    resume:
        Load *checkpoint* first and skip its completed cells (counted as
        ``faults.resume.cells_skipped``; ``faults.cells`` counts only
        computed cells).  The resumed matrix equals the uninterrupted
        one's cell for cell.  A checkpoint for a different system fails
        lint rule ``QUOT104``.
    workers:
        Shard every cell's kernel explorations across this many worker
        processes (see :mod:`repro.quotient.parallel`); the deterministic
        merge keeps each cell — and so the whole matrix — byte-identical
        to a sequential sweep.  ``None`` defers to the ambient count.
    """
    target_idx = _resolve_target(components, target)
    models = tuple(grid) if grid is not None else default_grid(timeout=timeout)

    fingerprint: str | None = None
    if checkpoint is not None or resume:
        fingerprint = resilience_fingerprint(
            service, components, converter, models, target_idx
        )

    cells: list[ResilienceCell] = []
    if resume:
        if checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")
        assert fingerprint is not None
        cells = _load_completed_cells(checkpoint, fingerprint, len(models))

    from contextlib import nullcontext

    from ..quotient.parallel import use_workers

    scope = use_workers(workers) if workers is not None else nullcontext()
    with scope, obs.span(
        "resilience",
        service=service.name,
        converter=converter.name,
        target=components[target_idx].name,
        cells=len(models),
    ):
        for model in models[len(cells):]:
            reporter = current_reporter()
            if reporter is not None:
                # label the following heartbeats with the in-flight cell
                reporter.note(
                    cell=model.label,
                    cell_index=len(cells) + 1,
                    cells=len(models),
                )
            with obs.span("resilience.cell", model=model.label):
                obs.add("faults.cells", 1)
                try:
                    cell = _evaluate_cell(
                        service,
                        components,
                        target_idx,
                        converter,
                        model,
                        int_events=int_events,
                        rederive=rederive,
                        budget=budget,
                        interrupt=interrupt,
                    )
                except InterruptRequested as exc:
                    # replace any quotient-kind checkpoint attached inside
                    # the cell with the sweep-level view: completed cells
                    # are the unit of resume here
                    assert fingerprint is not None or checkpoint is None
                    exc.checkpoint = _sweep_checkpoint(
                        fingerprint
                        or resilience_fingerprint(
                            service, components, converter, models, target_idx
                        ),
                        cells,
                        len(models),
                    )
                    if checkpoint is not None:
                        save_checkpoint(checkpoint, exc.checkpoint)
                    raise
                cells.append(cell)
                if checkpoint is not None:
                    assert fingerprint is not None
                    save_checkpoint(
                        checkpoint,
                        _sweep_checkpoint(fingerprint, cells, len(models)),
                    )

    return ResilienceMatrix(
        service=service.name,
        converter=converter.name,
        target=components[target_idx].name,
        cells=tuple(cells),
    )
