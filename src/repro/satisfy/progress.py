"""Satisfaction with respect to progress (Section 3).

Intuition: any environment guaranteed not to deadlock with the service ``A``
must be certain not to deadlock with the implementation ``B``.  Formally,
with ``A`` in normal form, nondeterminism in ``A`` unfair and in ``B`` fair,
and ``B`` already satisfying ``A`` w.r.t. safety:

    B sat A w.r.t. progress  ≡  ∀t, b : ↦t b ⇒ prog.(ψ_A.t).b

where

    prog.a.b ≡ (∃a' : a λ* a' ∧ sink.a' ∧ τ*.a' ⊆ τ*.b)

i.e. after every trace, the implementation's eventually-offered event set
``τ*.b`` covers at least one of the service's acceptable sink acceptance
sets.  (The paper notes quantifying over sink states of B is equivalent to
quantifying over all reachable b; we check all reachable b directly.)

The check pairs each reachable implementation state with the service's hub
state ``ψ_A.t`` and evaluates ``prog`` on each pair, reporting a shortest
path to a violating pair when progress fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Alphabet, Event
from ..spec.compiled import compiled, iter_bits, kernel_enabled
from ..spec.graph import close_under_lambda, sink_acceptance_sets, tau_star
from ..spec.normal_form import assert_normal_form, psi_step
from ..spec.spec import Specification, State, _state_sort_key
from ..traces.core import Trace, format_trace
from .safety import _check_same_interface


@dataclass(frozen=True)
class ProgressViolation:
    """Witness of a progress failure.

    After performing ``trace``, the implementation may occupy ``impl_state``
    whose eventually-offered events ``offered`` cover none of the service's
    acceptance sets ``required`` (the menu at hub ``service_hub``).
    """

    trace: Trace
    impl_state: State
    service_hub: State
    offered: Alphabet
    required: tuple[Alphabet, ...]

    def describe(self) -> str:
        menu = " | ".join("{" + ",".join(sorted(f)) + "}" for f in self.required)
        return (
            f"after {format_trace(self.trace)} the implementation may reach "
            f"state {self.impl_state!r} offering only "
            f"{{{','.join(sorted(self.offered))}}}, which covers none of the "
            f"service's acceptance sets [{menu}] at {self.service_hub!r}"
        )


@dataclass(frozen=True)
class ProgressResult:
    """Outcome of a progress-satisfaction check."""

    holds: bool
    violation: ProgressViolation | None
    pairs_explored: int

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        if self.holds:
            return f"progress holds ({self.pairs_explored} pairs explored)"
        assert self.violation is not None
        return "progress violated: " + self.violation.describe()


def prog(
    service: Specification,
    hub: State,
    offered: Alphabet,
) -> bool:
    """The predicate ``prog.a.b`` with ``τ*.b`` precomputed as *offered*.

    True iff some sink set internally reachable from *hub* has an acceptance
    set contained in *offered*.
    """
    return any(
        accept <= offered for accept in sink_acceptance_sets(service, hub)
    )


def _satisfies_progress_kernel(
    impl: Specification, service: Specification
) -> ProgressResult:
    """The same hub-tracking walk over compiled ids.

    ``τ*`` of the implementation, the service's acceptance menus, and the
    ``ψ``-advance are all table lookups on the compiled forms; the BFS
    mirrors the labeled walk's visit order exactly, so ``pairs_explored``
    and any :class:`ProgressViolation` (including the duplicate-preserving
    ``required`` menu) are identical.
    """
    ci = compiled(impl)
    cs = compiled(service)
    # identical interfaces ⇒ shared event ids between impl and service
    offered_masks = ci.tau_star_masks()
    menus = cs.acceptance_menus()
    psi = cs.psi_table()
    events = ci.events
    int_succ = ci.int_succ
    ext_moves = ci.ext_moves

    Pair = tuple[int, int]
    parent: dict[Pair, tuple[Pair, int | None]] = {}
    seen: set[Pair] = set()
    frontier: list[Pair] = []
    for b in iter_bits(ci.closure_masks()[ci.initial]):
        pair = (b, cs.initial)
        if pair not in seen:
            seen.add(pair)
            frontier.append(pair)

    def trace_to(pair: Pair) -> Trace:
        labels: list[Event] = []
        while pair in parent:
            pair, eid = parent[pair]
            if eid is not None:
                labels.append(events[eid])
        labels.reverse()
        return tuple(labels)

    def make_violation(pair: Pair, extra: int | None) -> ProgressViolation:
        b, hub = pair
        trace = trace_to(pair)
        if extra is not None:
            trace = trace + (events[extra],)
        return ProgressViolation(
            trace=trace,
            impl_state=ci.states[b],
            service_hub=cs.states[hub],
            offered=ci.decode_event_mask(offered_masks[b]),
            required=tuple(cs.decode_event_mask(m) for m in menus[hub]),
        )

    violation: ProgressViolation | None = None
    while frontier and violation is None:
        next_frontier: list[Pair] = []
        for pair in frontier:
            b, hub = pair
            offered = offered_masks[b]
            if not any(accept & offered == accept for accept in menus[hub]):
                violation = make_violation(pair, None)
                break
            for b2 in int_succ[b]:
                nxt = (b2, hub)
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = (pair, None)
                    next_frontier.append(nxt)
            psi_row = psi[hub]
            for eid, targets in ext_moves[b]:
                hub2 = psi_row[eid]
                if hub2 < 0:
                    # implementation performs a trace the service cannot:
                    # a safety violation surfacing during progress analysis
                    violation = make_violation(pair, eid)
                    break
                for b2 in targets:
                    nxt = (b2, hub2)
                    if nxt not in seen:
                        seen.add(nxt)
                        parent[nxt] = (pair, eid)
                        next_frontier.append(nxt)
            if violation is not None:
                break
        frontier = next_frontier
    return ProgressResult(
        holds=violation is None,
        violation=violation,
        pairs_explored=len(seen),
    )


def satisfies_progress(
    impl: Specification, service: Specification
) -> ProgressResult:
    """Check ``impl`` satisfies ``service`` with respect to progress.

    Preconditions (raised as errors when violated): identical interfaces and
    *service* in normal form.  Safety is assumed to hold — call
    :func:`repro.satisfy.verify.satisfies` for the combined check; if safety
    does not hold, hub tracking can fail and a :class:`ReproError` results.
    """
    _check_same_interface(impl, service)
    assert_normal_form(service)
    if kernel_enabled():
        return _satisfies_progress_kernel(impl, service)

    offered_of = tau_star(impl)
    accept_cache: dict[State, list[Alphabet]] = {}

    def acceptance(hub: State) -> list[Alphabet]:
        if hub not in accept_cache:
            accept_cache[hub] = sink_acceptance_sets(service, hub)
        return accept_cache[hub]

    Pair = tuple[State, State]
    parent: dict[Pair, tuple[Pair, Event | None]] = {}
    seen: set[Pair] = set()
    frontier: list[Pair] = []
    for b in sorted(close_under_lambda(impl, [impl.initial]), key=_state_sort_key):
        pair = (b, service.initial)
        if pair not in seen:
            seen.add(pair)
            frontier.append(pair)

    def trace_to(pair: Pair) -> Trace:
        events: list[Event] = []
        while pair in parent:
            pair, label = parent[pair]
            if label is not None:
                events.append(label)
        events.reverse()
        return tuple(events)

    violation: ProgressViolation | None = None
    while frontier and violation is None:
        next_frontier: list[Pair] = []
        for pair in frontier:
            b, hub = pair
            offered = offered_of[b]
            if not any(accept <= offered for accept in acceptance(hub)):
                violation = ProgressViolation(
                    trace=trace_to(pair),
                    impl_state=b,
                    service_hub=hub,
                    offered=offered,
                    required=tuple(acceptance(hub)),
                )
                break
            for b2 in sorted(impl.internal_successors(b), key=_state_sort_key):
                nxt = (b2, hub)
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = (pair, None)
                    next_frontier.append(nxt)
            for e in sorted(impl.enabled(b)):
                hub2 = psi_step(service, hub, e)
                if hub2 is None:
                    # implementation performs a trace the service cannot:
                    # a safety violation surfacing during progress analysis
                    violation = ProgressViolation(
                        trace=trace_to(pair) + (e,),
                        impl_state=b,
                        service_hub=hub,
                        offered=offered,
                        required=tuple(acceptance(hub)),
                    )
                    break
                for b2 in sorted(impl.successors(b, e), key=_state_sort_key):
                    nxt = (b2, hub2)
                    if nxt not in seen:
                        seen.add(nxt)
                        parent[nxt] = (pair, e)
                        next_frontier.append(nxt)
            if violation is not None:
                break
        frontier = next_frontier
    return ProgressResult(
        holds=violation is None,
        violation=violation,
        pairs_explored=len(seen),
    )
