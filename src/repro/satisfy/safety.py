"""Satisfaction with respect to safety (Section 3).

``B satisfies A with respect to safety`` iff every trace of B is a trace of
A: ``∀t : B.t ⇒ A.t``.  Both specifications must have the same interface
(alphabet).

The check runs a product walk pairing each reachable state of ``B`` with the
λ-closed subset of ``A``-states reachable by the same trace (an on-the-fly
determinization of ``A``).  It is exact, terminates on all finite specs, and
produces a shortest counterexample trace when inclusion fails.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AlphabetError
from ..events import Event
from ..spec.compiled import compiled, iter_bits, kernel_enabled
from ..spec.graph import close_under_lambda
from ..spec.spec import Specification, State, _state_sort_key
from ..traces.core import Trace, format_trace
from ..traces.language import subset_step


@dataclass(frozen=True)
class SafetyResult:
    """Outcome of a safety-satisfaction check.

    ``holds`` — whether ``∀t : B.t ⇒ A.t``;
    ``counterexample`` — a shortest trace of B that A cannot perform
    (``None`` when the property holds);
    ``pairs_explored`` — size of the explored product, for reporting.
    """

    holds: bool
    counterexample: Trace | None
    pairs_explored: int

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        if self.holds:
            return f"safety holds ({self.pairs_explored} product states explored)"
        assert self.counterexample is not None
        return (
            "safety violated: implementation performs "
            f"{format_trace(self.counterexample)}, which the service forbids"
        )


def _check_same_interface(impl: Specification, service: Specification) -> None:
    if impl.alphabet != service.alphabet:
        raise AlphabetError(
            "satisfaction requires identical interfaces: "
            f"{impl.name} has {impl.alphabet.sorted()}, "
            f"{service.name} has {service.alphabet.sorted()}"
        )


def _satisfies_safety_kernel(
    impl: Specification, service: Specification
) -> SafetyResult:
    """The same product walk over compiled ids and subset bitmasks.

    The implementation state is an int id; the service subset is an int
    bitmask over service state ids.  Loop structure and visit order mirror
    the labeled walk exactly (ascending ids ≡ the sorted-state order,
    ascending event ids ≡ sorted events), so ``pairs_explored`` and the
    counterexample trace are byte-identical.
    """
    ci = compiled(impl)
    cs = compiled(service)
    # identical interfaces ⇒ identical sorted event lists ⇒ shared event ids
    closures = cs.closure_masks()
    # per service state: event id → λ-closed successor mask
    step: list[dict[int, int]] = []
    for i in range(cs.n_states):
        row: dict[int, int] = {}
        for eid, targets in cs.ext_moves[i]:
            mask = 0
            for t in targets:
                mask |= closures[t]
            row[eid] = mask
        step.append(row)

    events = ci.events
    int_succ = ci.int_succ
    ext_moves = ci.ext_moves
    start_subset = closures[cs.initial]

    Pair = tuple[int, int]
    parent: dict[Pair, tuple[Pair, int | None]] = {}
    seen: set[Pair] = set()
    frontier: list[Pair] = []
    for b in iter_bits(ci.closure_masks()[ci.initial]):
        pair = (b, start_subset)
        if pair not in seen:
            seen.add(pair)
            frontier.append(pair)

    def trace_to(pair: Pair) -> Trace:
        labels: list[Event] = []
        while pair in parent:
            pair, eid = parent[pair]
            if eid is not None:
                labels.append(events[eid])
        labels.reverse()
        return tuple(labels)

    while frontier:
        next_frontier: list[Pair] = []
        for pair in frontier:
            b, subset = pair
            for b2 in int_succ[b]:
                nxt = (b2, subset)
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = (pair, None)
                    next_frontier.append(nxt)
            for eid, targets in ext_moves[b]:
                service_next = 0
                for i in iter_bits(subset):
                    service_next |= step[i].get(eid, 0)
                if not service_next:
                    return SafetyResult(
                        holds=False,
                        counterexample=trace_to(pair) + (events[eid],),
                        pairs_explored=len(seen),
                    )
                for b2 in targets:
                    nxt = (b2, service_next)
                    if nxt not in seen:
                        seen.add(nxt)
                        parent[nxt] = (pair, eid)
                        next_frontier.append(nxt)
        frontier = next_frontier
    return SafetyResult(holds=True, counterexample=None, pairs_explored=len(seen))


def satisfies_safety(impl: Specification, service: Specification) -> SafetyResult:
    """Check ``impl`` satisfies ``service`` with respect to safety.

    Raises :class:`AlphabetError` if the interfaces differ.
    """
    _check_same_interface(impl, service)
    if kernel_enabled():
        return _satisfies_safety_kernel(impl, service)

    Pair = tuple[State, frozenset[State]]
    start_subset = close_under_lambda(service, [service.initial])
    initial_impl = close_under_lambda(impl, [impl.initial])

    parent: dict[Pair, tuple[Pair, Event | None]] = {}
    seen: set[Pair] = set()
    frontier: list[Pair] = []
    for b in sorted(initial_impl, key=_state_sort_key):
        pair = (b, start_subset)
        if pair not in seen:
            seen.add(pair)
            frontier.append(pair)

    def trace_to(pair: Pair) -> Trace:
        events: list[Event] = []
        while pair in parent:
            pair, label = parent[pair]
            if label is not None:
                events.append(label)
        events.reverse()
        return tuple(events)

    while frontier:
        next_frontier: list[Pair] = []
        for pair in frontier:
            b, subset = pair
            # internal steps of the implementation leave the service subset fixed
            for b2 in sorted(impl.internal_successors(b), key=_state_sort_key):
                nxt = (b2, subset)
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = (pair, None)
                    next_frontier.append(nxt)
            for e in sorted(impl.enabled(b)):
                service_next = subset_step(service, subset, e)
                if not service_next:
                    return SafetyResult(
                        holds=False,
                        counterexample=trace_to(pair) + (e,),
                        pairs_explored=len(seen),
                    )
                for b2 in sorted(impl.successors(b, e), key=_state_sort_key):
                    nxt = (b2, service_next)
                    if nxt not in seen:
                        seen.add(nxt)
                        parent[nxt] = (pair, e)
                        next_frontier.append(nxt)
        frontier = next_frontier
    return SafetyResult(holds=True, counterexample=None, pairs_explored=len(seen))


def trace_inclusion_counterexample(
    sub: Specification, sup: Specification
) -> Trace | None:
    """Shortest trace of *sub* not in *sup*, or ``None`` if included.

    Convenience wrapper over :func:`satisfies_safety` for callers that only
    need the witness.
    """
    return satisfies_safety(sub, sup).counterexample
