"""Combined satisfaction: ``B satisfies A`` ≡ safety ∧ progress.

This is the library's independent oracle: every converter the quotient
solver produces is re-checked through this module (a different code path
from the solver itself) before being returned to callers.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import obs
from ..spec.spec import Specification
from .progress import ProgressResult, satisfies_progress
from .safety import SafetyResult, satisfies_safety


@dataclass(frozen=True)
class SatisfactionReport:
    """Full verdict of ``impl satisfies service``.

    Progress is only meaningful once safety holds (safety satisfaction is a
    necessary condition for progress satisfaction, Section 3); when safety
    fails, ``progress`` is ``None`` and the report is negative.
    """

    impl_name: str
    service_name: str
    safety: SafetyResult
    progress: ProgressResult | None

    @property
    def holds(self) -> bool:
        return bool(self.safety) and self.progress is not None and bool(self.progress)

    def __bool__(self) -> bool:
        return self.holds

    def describe(self) -> str:
        lines = [f"{self.impl_name} satisfies {self.service_name}: "
                 + ("YES" if self.holds else "NO")]
        lines.append("  " + self.safety.describe())
        if self.progress is not None:
            lines.append("  " + self.progress.describe())
        else:
            lines.append("  progress: not evaluated (safety failed)")
        return "\n".join(lines)


def satisfies(impl: Specification, service: Specification) -> SatisfactionReport:
    """Check full satisfaction of *service* by *impl*.

    The service must be in normal form (checked by the progress phase) and
    share the implementation's interface.  Safety is checked first; progress
    only if safety holds.
    """
    with obs.span("satisfies", impl=impl.name, service=service.name) as sp:
        with obs.span("satisfy.safety"):
            safety = satisfies_safety(impl, service)
        progress = None
        if safety.holds:
            with obs.span("satisfy.progress"):
                progress = satisfies_progress(impl, service)
        report = SatisfactionReport(
            impl_name=impl.name,
            service_name=service.name,
            safety=safety,
            progress=progress,
        )
        sp.set(holds=report.holds)
        obs.add("satisfy.checks", 1)
    return report
