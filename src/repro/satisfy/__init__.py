"""Satisfaction relations: safety, progress, and the combined verdict."""

from .progress import (
    ProgressResult,
    ProgressViolation,
    prog,
    satisfies_progress,
)
from .safety import (
    SafetyResult,
    satisfies_safety,
    trace_inclusion_counterexample,
)
from .verify import SatisfactionReport, satisfies

__all__ = [
    "ProgressResult",
    "ProgressViolation",
    "SafetyResult",
    "SatisfactionReport",
    "prog",
    "satisfies",
    "satisfies_progress",
    "satisfies_safety",
    "trace_inclusion_counterexample",
]
