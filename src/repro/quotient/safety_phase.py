"""The safety phase of the quotient algorithm (Fig. 5).

Inductively constructs ``C0``, the converter with the **largest trace set
consistent with safety** of ``B ‖ C`` (Theorem 1):

* start from ``h.ε`` if ``ok.(h.ε)`` holds (otherwise no quotient exists
  even with respect to safety);
* repeatedly extend each discovered pair set ``J`` by every Int event ``e``
  via ``φ(J, e)``, keeping the result iff ``ok`` holds;
* states are the pair sets themselves, so the paper's bijection ``f`` is
  the identity on our representation.

Termination follows from finiteness of the pair-set lattice.  Exploration
order is deterministic (FIFO worklist, events in sorted order), so the
resulting machine — including its BFS relabeling — is reproducible.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from .. import obs
from ..spec.compiled import kernel_enabled
from ..spec.spec import Specification
from .budget import Budget, BudgetMeter, make_meter
from .hmap import extend_pairs, initial_pairs
from .kernel import safety_explore_kernel
from .types import PairSet, QuotientProblem, SafetyPhaseResult

if TYPE_CHECKING:
    from ..persist.interrupt import InterruptController


def _explore_reference(
    problem: QuotientProblem,
    int_events: list[str],
    meter: BudgetMeter | None = None,
    resume: dict | None = None,
) -> tuple[PairSet | None, set[PairSet], list[tuple[PairSet, str, PairSet]], int, int]:
    """The labeled Fig. 5 worklist loop (reference path).

    The loop is flattened — ``current`` pair set plus a ``next_event``
    index instead of a nested for — so that every charge boundary falls
    *between* fully-processed work units.  The local ``snap`` closure
    captures exactly the loop state needed to continue from such a
    boundary; *resume* is a previously captured snapshot (decoded by
    :func:`repro.persist.decode_quotient_payload`) and continuing from it
    yields results byte-identical to the uninterrupted run.
    """
    n_events = len(int_events)
    if resume is None:
        start = initial_pairs(problem)
        if start is None:
            if meter is not None:
                meter.charge(pairs=1)
            return None, set(), [], 1, 1
        explored = 1
        rejected = 0
        states: set[PairSet] = {start}
        transitions: list[tuple[PairSet, str, PairSet]] = []
        worklist: deque[PairSet] = deque([start])
        current: PairSet | None = None
        next_event = 0
    else:
        start = resume["start"]
        explored = resume["explored"]
        rejected = resume["rejected"]
        states = set(resume["states"])
        transitions = list(resume["transitions"])
        worklist = deque(resume["worklist"])
        current = resume["current"]
        next_event = resume["next_event"]

    def snap() -> dict:
        return {
            "start": start,
            "current": current,
            "next_event": next_event,
            "states": set(states),
            "worklist": list(worklist),
            "transitions": list(transitions),
            "explored": explored,
            "rejected": rejected,
        }

    if resume is None and meter is not None:
        meter.charge(pairs=1, states=1, snapshot=snap)
    while True:
        if current is None or next_event >= n_events:
            if not worklist:
                break
            current = worklist.popleft()
            next_event = 0
            continue
        event = int_events[next_event]
        candidate = extend_pairs(problem, current, event)
        explored += 1
        next_event += 1
        added = 0
        if candidate is None:
            rejected += 1
        else:
            if candidate not in states:
                states.add(candidate)
                worklist.append(candidate)
                added = 1
            transitions.append((current, event, candidate))
        if meter is not None:
            meter.charge(
                pairs=1, states=added, frontier=len(worklist), snapshot=snap
            )
    return start, states, transitions, explored, rejected


def safety_phase(
    problem: QuotientProblem,
    *,
    budget: Budget | None = None,
    interrupt: "InterruptController | None" = None,
    resume: dict | None = None,
) -> SafetyPhaseResult:
    """Run the Fig. 5 construction, returning ``C0`` (or its nonexistence).

    The returned specification's states are pair sets; its alphabet is
    ``Int``; it has no internal transitions (``λ_C0 = ∅`` by definition).

    With a *budget*, pair-set evaluations are charged as ``pairs`` and
    surviving pair-set states as ``states``; exceeding either limit (or the
    wall-clock ceiling) raises :class:`~repro.errors.BudgetExceeded` with
    the phase name ``"safety"``.  The kernel and reference paths charge at
    identical points, so a count-limited run trips deterministically on
    both.  A budget that is never hit leaves the result byte-identical.

    *interrupt* hooks cooperative interruption (SIGINT / deadline /
    deterministic test point) into the same charge boundaries, raising
    :class:`~repro.errors.InterruptRequested`.  Either exception carries a
    consistent loop snapshot in ``phase_state``; passing that snapshot
    back as *resume* continues the exploration exactly where it stopped,
    on either path, with byte-identical results.
    """
    int_events = sorted(problem.interface.int_events)
    meter = make_meter(budget, "safety", interrupt)

    with obs.span("safety_phase") as sp:
        if kernel_enabled():
            start, states, transitions, explored, rejected = (
                safety_explore_kernel(problem, meter, resume=resume)
            )
        else:
            start, states, transitions, explored, rejected = _explore_reference(
                problem, int_events, meter, resume=resume
            )
        if start is None:
            # ¬ok.(h.ε): by property P1 no specification C can be safe.
            sp.set(exists=False, explored=1, rejected=1)
            obs.add("quotient.safety.pairs_explored", 1)
            obs.add("quotient.safety.pairs_rejected", 1)
            return SafetyPhaseResult(spec=None, f={}, explored=1, rejected=1)

        sp.set(
            exists=True,
            explored=explored,
            rejected=rejected,
            states=len(states),
            transitions=len(transitions),
        )
        obs.add("quotient.safety.pairs_explored", explored)
        obs.add("quotient.safety.pairs_rejected", rejected)
        obs.gauge("quotient.safety.c0_states", len(states))
        obs.gauge("quotient.safety.c0_transitions", len(transitions))

    spec = Specification(
        f"C0({problem.service.name}/{problem.component.name})",
        states,
        problem.interface.int_events,
        transitions,
        (),
        start,
    )
    return SafetyPhaseResult(
        spec=spec,
        f={s: s for s in states},
        explored=explored,
        rejected=rejected,
    )
