"""The safety phase of the quotient algorithm (Fig. 5).

Inductively constructs ``C0``, the converter with the **largest trace set
consistent with safety** of ``B ‖ C`` (Theorem 1):

* start from ``h.ε`` if ``ok.(h.ε)`` holds (otherwise no quotient exists
  even with respect to safety);
* repeatedly extend each discovered pair set ``J`` by every Int event ``e``
  via ``φ(J, e)``, keeping the result iff ``ok`` holds;
* states are the pair sets themselves, so the paper's bijection ``f`` is
  the identity on our representation.

Termination follows from finiteness of the pair-set lattice.  Exploration
order is deterministic (FIFO worklist, events in sorted order), so the
resulting machine — including its BFS relabeling — is reproducible.
"""

from __future__ import annotations

from collections import deque

from .. import obs
from ..spec.compiled import kernel_enabled
from ..spec.spec import Specification
from .budget import Budget, BudgetMeter
from .hmap import extend_pairs, initial_pairs
from .kernel import safety_explore_kernel
from .types import PairSet, QuotientProblem, SafetyPhaseResult


def _explore_reference(
    problem: QuotientProblem,
    int_events: list[str],
    meter: BudgetMeter | None = None,
) -> tuple[PairSet | None, set[PairSet], list[tuple[PairSet, str, PairSet]], int, int]:
    """The labeled Fig. 5 worklist loop (reference path)."""
    start = initial_pairs(problem)
    explored = 1
    if meter is not None:
        meter.charge(pairs=1)
    if start is None:
        return None, set(), [], explored, 1
    if meter is not None:
        meter.charge(states=1)
    states: set[PairSet] = {start}
    transitions: list[tuple[PairSet, str, PairSet]] = []
    rejected = 0
    worklist: deque[PairSet] = deque([start])
    while worklist:
        current = worklist.popleft()
        for event in int_events:
            candidate = extend_pairs(problem, current, event)
            explored += 1
            if meter is not None:
                meter.charge(pairs=1, frontier=len(worklist))
            if candidate is None:
                rejected += 1
                continue
            if candidate not in states:
                states.add(candidate)
                worklist.append(candidate)
                if meter is not None:
                    meter.charge(states=1, frontier=len(worklist))
            transitions.append((current, event, candidate))
    return start, states, transitions, explored, rejected


def safety_phase(
    problem: QuotientProblem, *, budget: Budget | None = None
) -> SafetyPhaseResult:
    """Run the Fig. 5 construction, returning ``C0`` (or its nonexistence).

    The returned specification's states are pair sets; its alphabet is
    ``Int``; it has no internal transitions (``λ_C0 = ∅`` by definition).

    With a *budget*, pair-set evaluations are charged as ``pairs`` and
    surviving pair-set states as ``states``; exceeding either limit (or the
    wall-clock ceiling) raises :class:`~repro.errors.BudgetExceeded` with
    the phase name ``"safety"``.  The kernel and reference paths charge at
    identical points, so a count-limited run trips deterministically on
    both.  A budget that is never hit leaves the result byte-identical.
    """
    int_events = sorted(problem.interface.int_events)
    meter = (
        budget.meter("safety")
        if budget is not None and not budget.unlimited
        else None
    )

    with obs.span("safety_phase") as sp:
        if kernel_enabled():
            start, states, transitions, explored, rejected = (
                safety_explore_kernel(problem, meter)
            )
        else:
            start, states, transitions, explored, rejected = _explore_reference(
                problem, int_events, meter
            )
        if start is None:
            # ¬ok.(h.ε): by property P1 no specification C can be safe.
            sp.set(exists=False, explored=1, rejected=1)
            obs.add("quotient.safety.pairs_explored", 1)
            obs.add("quotient.safety.pairs_rejected", 1)
            return SafetyPhaseResult(spec=None, f={}, explored=1, rejected=1)

        sp.set(
            exists=True,
            explored=explored,
            rejected=rejected,
            states=len(states),
            transitions=len(transitions),
        )
        obs.add("quotient.safety.pairs_explored", explored)
        obs.add("quotient.safety.pairs_rejected", rejected)
        obs.gauge("quotient.safety.c0_states", len(states))
        obs.gauge("quotient.safety.c0_transitions", len(transitions))

    spec = Specification(
        f"C0({problem.service.name}/{problem.component.name})",
        states,
        problem.interface.int_events,
        transitions,
        (),
        start,
    )
    return SafetyPhaseResult(
        spec=spec,
        f={s: s for s in states},
        explored=explored,
        rejected=rejected,
    )
