"""The ``h`` map and the ``φ`` extension function (Section 4).

The safety phase identifies each candidate converter state with the set

    h.r = { (a, b) : ∃t : i.t = r ∧ ↦t b ∧ a = ψ_A.(o.t) }

— for every way the component ``B`` can have matched the converter trace
``r``, the possible current ``B`` state paired with the service hub tracking
the externally-observable projection.

Two operations are needed:

* ``h.ε`` — the initial pair set (:func:`initial_pairs`);
* ``φ(J, e)`` for ``e ∈ Int`` with ``h.r = J ⇒ h.re = φ(h.r, e)``
  (:func:`extend_pairs`).

Both reduce to one *Ext-closure*: saturate a pair set under the moves of
``B`` that the converter does not participate in — internal λ steps of
``B``, and external events ``g ∈ Ext`` mirrored by the service's hub-advance
``a ⟶g▷ a'``.  If during closure ``B`` enables some ``g ∈ Ext`` that the
service hub cannot mirror, the paper's ``ok`` predicate fails for the set:
``τ.b ∩ Ext ⊄ τ*.a``.  Closure reports this by returning ``None`` (the
candidate state is rejected, exactly the ``if ok.J`` guard of Fig. 5).
"""

from __future__ import annotations

from ..events import Event
from ..spec.normal_form import psi_step
from ..spec.spec import _state_sort_key
from .types import Pair, PairSet, QuotientProblem


def _pair_sort_key(pair: Pair) -> tuple:
    a, b = pair
    return (_state_sort_key(a), _state_sort_key(b))


def ext_closure(problem: QuotientProblem, seed: set[Pair]) -> PairSet | None:
    """Saturate *seed* under B's λ steps and Ext events (service-mirrored).

    Returns the closed pair set, or ``None`` if closure encounters a pair
    ``(a, b)`` where ``B`` enables an Ext event that ``A``'s hub cannot
    perform — the ``ok`` violation that makes the candidate unsafe.
    """
    service = problem.service
    component = problem.component
    ext = problem.interface.ext_events

    closed: set[Pair] = set(seed)
    stack: list[Pair] = sorted(seed, key=_pair_sort_key)
    while stack:
        a, b = stack.pop()
        for b2 in sorted(component.internal_successors(b), key=_state_sort_key):
            pair = (a, b2)
            if pair not in closed:
                closed.add(pair)
                stack.append(pair)
        for g in sorted(component.enabled(b)):
            if g not in ext:
                continue
            a2 = psi_step(service, a, g)
            if a2 is None:
                # τ.b ∩ Ext ⊄ τ*.a — ok fails for any set containing (a, b)
                return None
            for b2 in sorted(component.successors(b, g), key=_state_sort_key):
                pair = (a2, b2)
                if pair not in closed:
                    closed.add(pair)
                    stack.append(pair)
    return frozenset(closed)


def initial_pairs(problem: QuotientProblem) -> PairSet | None:
    """``h.ε`` — or ``None`` when ``¬ok.(h.ε)`` (no safe quotient at all).

    ``h.ε`` pairs every ``B`` state reachable by Ext-only behaviour with the
    service hub tracking that behaviour, starting from
    ``(a0, b0) = (ψ_A.ε, s0 of B)``.
    """
    seed = {(problem.service.initial, problem.component.initial)}
    return ext_closure(problem, seed)


def extend_pairs(
    problem: QuotientProblem, pairs: PairSet, event: Event
) -> PairSet | None:
    """``φ(J, e)`` for ``e ∈ Int`` — or ``None`` when ``¬ok.(φ(J, e))``.

    Step every pair's ``B`` state by *event* (the service does not move:
    Int events are invisible to it), then Ext-close.  The result may be the
    empty set — meaning no trace of ``B`` matches the extended converter
    trace, which is *trivially safe* (the paper: "r is trivially safe if no
    trace of B matches r") and yields a legitimate, if useless, converter
    state.
    """
    if event not in problem.interface.int_events:
        raise ValueError(f"φ is defined only for Int events, got {event!r}")
    component = problem.component
    seed: set[Pair] = set()
    for a, b in pairs:
        for b2 in component.successors(b, event):
            seed.add((a, b2))
    return ext_closure(problem, seed)


def ok(problem: QuotientProblem, pairs: PairSet) -> bool:
    """The predicate ``ok.J ≡ ∀(a,b) ∈ J : τ.b ∩ Ext ⊆ τ*.a``.

    Provided standalone for testing the paper's properties P1-P3; the
    phases themselves detect violations during closure.
    """
    service = problem.service
    component = problem.component
    ext = problem.interface.ext_events
    for a, b in pairs:
        for g in component.enabled(b):
            if g in ext and psi_step(service, a, g) is None:
                return False
    return True
