"""Removing "superfluous portions" of a maximal converter (Section 5).

The quotient algorithm returns the converter with the *maximal* trace set;
the paper notes (Fig. 14, dotted boxes) that such a converter may contain
cycles that are harmless but "do nothing for overall system progress", and
that removing them "is computationally expensive and is best done by hand."

This module implements the expensive part as optional utilities:

* :func:`drop_vacuous_states` — remove states whose pair set is empty.
  Those states encode converter traces that ``B`` can never match; they are
  unreachable in the composite ``B ‖ C``, so removal never changes system
  behaviour (cheap, always sound).
* :func:`merge_equivalent_states` — quotient the (deterministic, λ-free)
  converter by trace equivalence via DFA minimization.  For a deterministic
  converter, a state's future cooperation with ``B`` is exactly its
  trace language, so the composite's behaviour is preserved.
* :func:`minimize_converter` — the greedy brute force: repeatedly try
  deleting a state and keep the deletion iff the composite still satisfies
  the service (verified through the independent checker).  Produces a
  *minimal-by-inclusion* (not necessarily minimum) correct converter.

Every utility re-verifies its output when given the problem, so a pruned
converter is exactly as trustworthy as the original.
"""

from __future__ import annotations

from .. import obs
from ..compose.binary import compose
from ..satisfy.verify import satisfies
from ..spec.minimize import minimize_deterministic
from ..spec.ops import prune_unreachable, remove_states
from ..spec.spec import Specification, State, _state_sort_key
from .types import PairSet, QuotientProblem


def drop_vacuous_states(
    converter: Specification, f: dict[State, PairSet]
) -> Specification:
    """Remove states whose pair set is empty (B-unmatchable traces).

    The initial state always has a nonempty pair set (it contains
    ``(a0, b0)``), so it is never removed.  The result is trimmed to its
    reachable part.
    """
    vacuous = {s for s in converter.states if not f.get(s, frozenset())}
    vacuous.discard(converter.initial)
    obs.add("quotient.prune.vacuous_states_removed", len(vacuous))
    if not vacuous:
        return converter
    return prune_unreachable(remove_states(converter, vacuous))


def merge_equivalent_states(converter: Specification) -> Specification:
    """DFA-minimize a deterministic λ-free converter (trace-preserving)."""
    return minimize_deterministic(converter)


def minimize_converter(
    problem: QuotientProblem,
    converter: Specification,
    *,
    max_passes: int = 10,
) -> Specification:
    """Greedy state-deletion minimization, verified at every step.

    Deterministic order; O(states² · verification) per pass, which is why
    the paper recommends doing this "by hand" — it is provided for the small
    machines where exhaustive cleanup is affordable.
    """
    current = converter

    def still_correct(candidate: Specification) -> bool:
        composite = compose(problem.component, candidate)
        return satisfies(composite, problem.service).holds

    for _ in range(max_passes):
        improved = False
        for state in sorted(current.states, key=_state_sort_key):
            if state == current.initial:
                continue
            candidate = prune_unreachable(remove_states(current, [state]))
            if len(candidate.states) >= len(current.states):
                continue
            if still_correct(candidate):
                current = candidate
                improved = True
                break
        if not improved:
            return current
    return current


def prune_converter(
    problem: QuotientProblem,
    converter: Specification,
    f: dict[State, PairSet],
    *,
    exhaustive: bool = False,
) -> Specification:
    """One-call cleanup pipeline: vacuous-state drop, DFA merge, and —
    when *exhaustive* — greedy deletion minimization.

    The result is re-verified against the problem before being returned.
    """
    with obs.span("prune_converter", exhaustive=exhaustive) as sp:
        pruned = drop_vacuous_states(converter, f)
        pruned = merge_equivalent_states(pruned)
        if exhaustive:
            pruned = minimize_converter(problem, pruned)
        sp.set(before=len(converter.states), after=len(pruned.states))
        obs.add(
            "quotient.prune.states_removed",
            len(converter.states) - len(pruned.states),
        )
    composite = compose(problem.component, pruned)
    report = satisfies(composite, problem.service)
    if not report.holds:  # pragma: no cover - internal consistency guard
        raise AssertionError(
            "pruning broke the converter:\n" + report.describe()
        )
    return pruned.renamed(f"pruned({converter.name})")
