"""The progress phase of the quotient algorithm (Fig. 6).

Iteratively removes *bad* states from the safety-phase machine ``C0``:

    c is bad ≡ ∃(a, b) ∈ f.c : ¬prog.a.⟨b, c⟩

where ``⟨b, c⟩`` is a state of the composite ``B ‖ C`` and ``prog.a.⟨b,c⟩``
requires the events the composite eventually offers from ``⟨b, c⟩`` —
``τ*.⟨b,c⟩``, computed over the composite's internal moves (λ steps of B
and synchronized Int events between B and C) — to cover some sink
acceptance set of the service reachable from hub ``a``.

Because removing states shrinks C's cooperation and hence ``τ*``, the
check-and-remove loop repeats until a fixpoint, or until the initial state
is removed (equivalent to removing every state: no quotient exists).

As Fig. 6 does, ``f`` is *not* recomputed between rounds — Theorem 2's
guarantee ("a state marked bad belongs to no solution") relies on judging
every pair ever associated with a state, and ``τ*`` is evaluated on the
full product (internal reachability from ``⟨b, c⟩`` does not require
``⟨b, c⟩`` itself to be reachable from the initial state).  A final
reachability trim is applied afterwards by the solver, as presentation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import obs
from ..events import Alphabet, Event
from ..spec.compiled import kernel_enabled
from ..spec.graph import sink_acceptance_sets
from ..spec.spec import Specification, State, _state_sort_key
from .budget import Budget, make_meter
from .kernel import progress_phase_kernel
from .types import PairSet, ProgressPhaseResult, ProgressRound, QuotientProblem

if TYPE_CHECKING:
    from ..persist.interrupt import InterruptController


def _strip_states(c0: Specification, removed: set[State]) -> Specification:
    """*c0* minus *removed*, rebuilt the way the round loop does.

    Because the per-round filtering is monotone, removing the union of
    all rounds' bad states in one step yields a machine equal to the one
    the uninterrupted loop reaches iteratively — which is what makes
    round-granular checkpoints sufficient for exact resume.
    """
    keep = c0.states - removed
    return Specification(
        c0.name,
        keep,
        c0.alphabet,
        (
            (s, e, s2)
            for s, e, s2 in c0.external
            if s in keep and s2 in keep
        ),
        (),
        c0.initial,
    )


def _replay_terminal(
    c0: Specification, rounds: list[ProgressRound], removed: set[State]
) -> ProgressPhaseResult | None:
    """The phase result when the resumed *rounds* already ended the loop.

    A checkpoint taken after the progress phase (``phase="verify"``)
    carries the full round history including its terminal round; resuming
    must reproduce the recorded outcome instead of re-entering the loop
    and appending duplicate rounds.  Returns ``None`` when the last round
    is non-terminal (the loop should continue).
    """
    last = rounds[-1]
    if not last.bad_states:
        if len(rounds) == 1:
            return ProgressPhaseResult(spec=c0, rounds=tuple(rounds))
        return ProgressPhaseResult(
            spec=_strip_states(c0, removed), rounds=tuple(rounds)
        )
    if c0.initial in last.bad_states or last.remaining == 0:
        return ProgressPhaseResult(spec=None, rounds=tuple(rounds))
    return None


def _composite_tau_star(
    problem: QuotientProblem,
    converter: Specification,
    pairs_needed: list[tuple[State, State]],
) -> dict[tuple[State, State], Alphabet]:
    with obs.span("tau_star", pairs=len(pairs_needed)):
        return _composite_tau_star_impl(problem, converter, pairs_needed)


def _composite_tau_star_impl(
    problem: QuotientProblem,
    converter: Specification,
    pairs_needed: list[tuple[State, State]],
) -> dict[tuple[State, State], Alphabet]:
    """``τ*.⟨b, c⟩`` of ``B ‖ C`` for every requested product state.

    Internal moves of the composite are: λ steps of ``B`` (``C0`` has none),
    and synchronized Int events (enabled in both ``B`` and ``C``).  External
    events of the composite are ``B``'s Ext events.

    Computed in one shared pass: the internal-move subgraph forward-reachable
    from the requested nodes is explored once, its SCCs condensed (Tarjan),
    and the Ext-event sets propagated through the condensation — the same
    scheme :func:`repro.spec.graph.tau_star` uses, lifted to the product.
    This keeps the progress phase near-linear per round instead of
    quadratic in the explored product.
    """
    component = problem.component
    ext = problem.interface.ext_events
    int_events = problem.interface.int_events

    # per-component-state precomputations (few distinct b's, many nodes)
    ext_of_b: dict[State, frozenset] = {}
    int_moves_of_b: dict[State, list[tuple[str, State]]] = {}

    def prep(b: State) -> None:
        if b in ext_of_b:
            return
        enabled = component.enabled(b)
        ext_of_b[b] = frozenset(enabled & ext)
        moves: list[tuple[str, State]] = []
        for e in sorted(enabled):
            if e in int_events:
                for b2 in sorted(component.successors(b, e), key=_state_sort_key):
                    moves.append((e, b2))
        int_moves_of_b[b] = moves

    lambda_of_b: dict[State, list[State]] = {}

    def internal_successors(node: tuple[State, State]) -> list[tuple[State, State]]:
        b, c = node
        prep(b)
        if b not in lambda_of_b:
            lambda_of_b[b] = sorted(
                component.internal_successors(b), key=_state_sort_key
            )
        result: list[tuple[State, State]] = [
            (b2, c) for b2 in lambda_of_b[b]
        ]
        for e, b2 in int_moves_of_b[b]:
            for c2 in sorted(converter.successors(c, e), key=_state_sort_key):
                result.append((b2, c2))
        return result

    # explore the relevant product subgraph once
    adjacency: dict[tuple[State, State], list[tuple[State, State]]] = {}
    stack = list(dict.fromkeys(pairs_needed))
    while stack:
        node = stack.pop()
        if node in adjacency:
            continue
        succs = internal_successors(node)
        adjacency[node] = succs
        for nxt in succs:
            if nxt not in adjacency:
                stack.append(nxt)

    # iterative Tarjan over the subgraph
    index: dict[tuple[State, State], int] = {}
    lowlink: dict[tuple[State, State], int] = {}
    on_stack: set[tuple[State, State]] = set()
    scc_stack: list[tuple[State, State]] = []
    scc_of: dict[tuple[State, State], int] = {}
    scc_events: list[set[Event]] = []
    counter = 0

    for root in adjacency:
        if root in index:
            continue
        work = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for nxt in succ_iter:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    scc_stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp_idx = len(scc_events)
                events: set[Event] = set()
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = comp_idx
                    events |= ext_of_b[member[0]]
                    if member == node:
                        break
                scc_events.append(events)

    # propagate successor events (emission order = reverse topological)
    members_of: dict[int, list[tuple[State, State]]] = {}
    for node, comp_idx in scc_of.items():
        members_of.setdefault(comp_idx, []).append(node)
    for comp_idx in range(len(scc_events)):
        events = scc_events[comp_idx]
        for node in members_of[comp_idx]:
            for nxt in adjacency[node]:
                j = scc_of[nxt]
                if j != comp_idx:
                    events |= scc_events[j]

    obs.add("quotient.progress.tau_star_nodes", len(adjacency))
    obs.add("quotient.progress.tau_star_sccs", len(scc_events))
    return {
        node: Alphabet(scc_events[scc_of[node]]) for node in pairs_needed
    }


def progress_phase(
    problem: QuotientProblem,
    c0: Specification,
    f: dict[State, PairSet],
    *,
    budget: Budget | None = None,
    interrupt: "InterruptController | None" = None,
    resume: "tuple[ProgressRound, ...] | None" = None,
) -> ProgressPhaseResult:
    """Run the Fig. 6 loop on the safety-phase machine.

    *c0*'s states must be the pair sets produced by
    :func:`~repro.quotient.safety_phase.safety_phase` (``f`` maps each state
    to its pair set; with the canonical encoding it is the identity).

    With a *budget*, each round charges its ``(b, c)`` product-pair checks
    as ``pairs`` (the round's surviving-state count is reported as the
    frontier); exceeding ``max_pairs`` or the wall-clock ceiling raises
    :class:`~repro.errors.BudgetExceeded` with phase ``"progress"``.
    Charges are identical on the kernel and reference paths.

    *interrupt* raises :class:`~repro.errors.InterruptRequested` at the
    same per-round boundaries.  Either exception's ``phase_state`` is the
    tuple of completed rounds; passing it back as *resume* skips those
    rounds exactly (rounds are the phase's natural work unit, and
    removals compose monotonically — see :func:`_strip_states`).
    """
    meter = make_meter(budget, "progress", interrupt)
    if kernel_enabled():
        return progress_phase_kernel(problem, c0, f, meter, resume=resume)
    service = problem.service

    accept_cache: dict[State, list[Alphabet]] = {}

    def acceptance(hub: State) -> list[Alphabet]:
        if hub not in accept_cache:
            accept_cache[hub] = sink_acceptance_sets(service, hub)
        return accept_cache[hub]

    current = c0
    rounds: list[ProgressRound] = []
    if resume:
        rounds = list(resume)
        removed: set[State] = set()
        for completed in rounds:
            removed |= completed.bad_states
        terminal = _replay_terminal(c0, rounds, removed)
        if terminal is not None:
            return terminal
        current = _strip_states(c0, removed)

    def snap() -> dict:
        return {"rounds": tuple(rounds)}

    with obs.span("progress_phase") as phase_span:
        while True:
            with obs.span("progress_round", round=len(rounds)) as round_span:
                # τ*.⟨b,c⟩ for every pair associated with a surviving state
                needed: list[tuple[State, State]] = []
                for c in current.states:
                    for a, b in sorted(f[c], key=lambda p: (_state_sort_key(p[0]), _state_sort_key(p[1]))):
                        needed.append((b, c))
                if meter is not None:
                    meter.charge(
                        pairs=len(needed),
                        frontier=len(current.states),
                        snapshot=snap,
                    )
                offered = _composite_tau_star(problem, current, needed)

                bad: set[State] = set()
                for c in sorted(current.states, key=_state_sort_key):
                    for a, b in f[c]:
                        menu = acceptance(a)
                        if not any(accept <= offered[(b, c)] for accept in menu):
                            bad.add(c)
                            break
                rounds.append(
                    ProgressRound(
                        round_index=len(rounds),
                        bad_states=frozenset(bad),
                        remaining=len(current.states) - len(bad),
                    )
                )
                round_span.set(
                    pairs_checked=len(needed),
                    bad=len(bad),
                    remaining=len(current.states) - len(bad),
                )
                obs.add("quotient.progress.rounds", 1)
                obs.add("quotient.progress.pairs_checked", len(needed))
                obs.add("quotient.progress.bad_states_removed", len(bad))
            if not bad:
                phase_span.set(exists=True, rounds=len(rounds))
                obs.gauge("quotient.progress.final_states", len(current.states))
                return ProgressPhaseResult(spec=current, rounds=tuple(rounds))
            if current.initial in bad or len(bad) == len(current.states):
                # removing the initial state makes all states unreachable:
                # no quotient exists (Theorem 2)
                phase_span.set(exists=False, rounds=len(rounds))
                obs.gauge("quotient.progress.final_states", 0)
                return ProgressPhaseResult(spec=None, rounds=tuple(rounds))
            keep = current.states - bad
            current = Specification(
                current.name,
                keep,
                current.alphabet,
                (
                    (s, e, s2)
                    for s, e, s2 in current.external
                    if s in keep and s2 in keep
                ),
                (),
                current.initial,
            )
