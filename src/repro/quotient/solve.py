"""Top-level quotient solver.

Runs the two phases of Section 4 in order, trims the result to its
reachable part (presentation only — bad-state removal has already been
applied exhaustively), relabels converter states to compact integers while
retaining the pair-set annotation ``f``, and — by default — **independently
re-verifies** the produced converter through :mod:`repro.satisfy` (a
different code path), so a returned converter is never taken on faith.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Iterable

from .. import obs
from ..compose.binary import compose
from ..errors import BudgetExceeded, InterruptRequested, QuotientError
from ..lint.engine import lint_checkpoint, preflight_quotient
from ..satisfy.verify import SatisfactionReport, satisfies
from ..spec.ops import prune_unreachable
from ..spec.spec import Specification, State
from .budget import Budget
from .progress_phase import progress_phase
from .safety_phase import safety_phase
from .types import PairSet, QuotientProblem, QuotientResult

if TYPE_CHECKING:
    from ..persist.checkpoint import Checkpoint
    from ..persist.interrupt import InterruptController


def _relabel_with_f(
    spec: Specification,
) -> tuple[Specification, dict[State, PairSet]]:
    """BFS-relabel a pair-set-state machine to integers, keeping ``f``."""
    order = spec._bfs_order()
    mapping = {s: i for i, s in enumerate(order)}
    relabeled = spec.map_states(mapping)
    f = {mapping[s]: s for s in spec.states}
    return relabeled, f


def solve_quotient(
    service: Specification,
    component: Specification,
    *,
    int_events: Iterable[str] | None = None,
    verify: bool = True,
    preflight: bool = True,
    deep_preflight: bool = False,
    budget: Budget | None = None,
    interrupt: "InterruptController | None" = None,
    resume_from: "Checkpoint | None" = None,
    workers: int | None = None,
) -> QuotientResult:
    """Compute the quotient ``service / component``.

    Parameters
    ----------
    service:
        The service specification ``A`` (must be in normal form, alphabet
        ``Ext``).
    component:
        The composite of existing protocol components ``B`` (alphabet
        ``Int ∪ Ext``).
    int_events:
        Optional declaration of ``Int`` to validate against the inferred
        ``Σ_B − Σ_A``.
    verify:
        Re-check the returned converter independently via
        :func:`repro.satisfy.satisfies` (default on).  A verification
        failure raises :class:`QuotientError` — it would indicate a bug in
        the solver, never a property of the inputs.
    preflight:
        Statically lint the problem first (default on): partition
        violations, a non-normal-form service, and similar malformations
        raise :class:`~repro.errors.LintError` with *every* violation
        collected, instead of a first-failure exception from inside the
        algorithm.  Pass ``False`` to opt out (the per-check exceptions of
        :class:`~repro.quotient.types.QuotientProblem` still apply).
    deep_preflight:
        Additionally run the *semantic* analyzer
        (:func:`repro.lint.semantic.deep_preflight`) over both inputs
        before solving: reachability-level defects — a reachable deadlock
        (``SEM204``) or livelock (``SEM205``) in the component composite —
        raise :class:`~repro.errors.LintError` with a product-state
        witness trace, instead of surfacing as an inexplicably empty
        converter.  Off by default because it explores both machines'
        full graphs; the exploration honors ``budget``.
    budget:
        Optional :class:`~repro.quotient.budget.Budget` bounding the solve.
        Each phase (safety, progress, the verification composition) gets a
        fresh meter, so count/time limits apply per phase; exceeding a
        limit raises :class:`~repro.errors.BudgetExceeded` naming the
        interrupted phase and carrying its partial statistics.  A budget
        that is never hit leaves the result byte-identical to an
        unbudgeted run.
    interrupt:
        Optional :class:`~repro.persist.InterruptController`.  A pending
        SIGINT, an expired deadline, or a deterministic test point raises
        :class:`~repro.errors.InterruptRequested` at the next charge
        boundary.  Both it and :class:`~repro.errors.BudgetExceeded`
        carry a :class:`~repro.persist.Checkpoint` (``exc.checkpoint``)
        capturing the interrupted phase's exact state.
    resume_from:
        A checkpoint from a previous interrupted solve of the *same*
        problem.  The solve continues where it stopped and produces a
        result byte-identical to an uninterrupted run.  A checkpoint
        whose fingerprint does not match the problem raises
        :class:`~repro.errors.LintError` (rule ``QUOT104``).  Budgets are
        per-run: the resumed run charges fresh meters, so pass a larger
        budget (or none) or the same limit will trip again.
    workers:
        Shard the kernel explorations across this many worker processes
        (see :mod:`repro.quotient.parallel`).  The merge is
        deterministic, so any worker count — including resuming a
        checkpoint under a different one — produces byte-identical
        results.  ``None`` defers to the ambient count
        (``REPRO_WORKERS`` / :func:`~repro.quotient.parallel.use_workers`,
        default sequential); ``1`` forces the sequential kernel.

    Returns
    -------
    QuotientResult
        ``result.exists`` tells whether a converter exists; when it does,
        ``result.converter`` is the maximal converter (Theorem 1 / 2) with
        integer states and ``result.f`` maps each state to its ``(a, b)``
        pair set.  When an :mod:`repro.obs` collector is recording,
        ``result.stats`` carries the collected metrics snapshot.
    """
    from contextlib import nullcontext

    from .parallel import drain_degradations, use_workers

    drain_degradations()  # drop stale records from an earlier failed run
    scope = use_workers(workers) if workers is not None else nullcontext()
    with scope, obs.span(
        "solve_quotient", service=service.name, component=component.name
    ) as sp:
        result = _solve(
            service,
            component,
            int_events=int_events,
            verify=verify,
            preflight=preflight,
            deep_preflight=deep_preflight,
            budget=budget,
            interrupt=interrupt,
            resume_from=resume_from,
        )
        sp.set(exists=result.exists)
    stats = obs.snapshot_if_recording()
    if stats is not None:
        result = replace(result, stats=stats)
    degradations = drain_degradations()
    if degradations:
        result = replace(result, degradations=degradations)
    return result


def _validate_resume(
    problem: QuotientProblem, checkpoint: "Checkpoint"
) -> tuple[dict | None, "tuple | None"]:
    """Decode *checkpoint* for *problem*, rejecting stale checkpoints.

    A checkpoint taken for different inputs (service, component, or Int)
    fails the ``QUOT104`` lint with a :class:`~repro.errors.LintError`;
    resuming from it would silently compute garbage.  Returns the decoded
    ``(safety_resume, progress_resume)`` states.
    """
    from ..persist.checkpoint import (
        decode_quotient_payload,
        problem_fingerprint,
    )

    lint_checkpoint(
        kind=checkpoint.kind,
        phase=checkpoint.phase,
        fingerprint=checkpoint.fingerprint,
        expected_kind="quotient",
        expected_fingerprint=problem_fingerprint(problem),
    ).raise_if_errors()
    return decode_quotient_payload(checkpoint)


def _attach_checkpoint(
    exc: BudgetExceeded | InterruptRequested,
    problem: QuotientProblem,
    *,
    phase: str,
    safety_state: dict | None,
    rounds: "tuple | None",
) -> None:
    from ..persist.checkpoint import quotient_checkpoint

    exc.checkpoint = quotient_checkpoint(
        problem, phase=phase, safety_state=safety_state, rounds=rounds
    )


def _solve(
    service: Specification,
    component: Specification,
    *,
    int_events: Iterable[str] | None,
    verify: bool,
    preflight: bool,
    deep_preflight: bool = False,
    budget: Budget | None = None,
    interrupt: "InterruptController | None" = None,
    resume_from: "Checkpoint | None" = None,
) -> QuotientResult:
    if preflight:
        with obs.span("preflight"):
            preflight_quotient(service, component, int_events).raise_if_errors()
    if deep_preflight:
        from ..lint.semantic import deep_preflight as semantic_preflight

        with obs.span("deep_preflight"):
            semantic_preflight(
                service, component, budget=budget, interrupt=interrupt
            ).raise_if_errors()
    problem = QuotientProblem.build(service, component, int_events)

    safety_resume: dict | None = None
    progress_resume: "tuple | None" = None
    if resume_from is not None:
        safety_resume, progress_resume = _validate_resume(problem, resume_from)

    try:
        safety = safety_phase(
            problem, budget=budget, interrupt=interrupt, resume=safety_resume
        )
    except (BudgetExceeded, InterruptRequested) as exc:
        _attach_checkpoint(
            exc,
            problem,
            phase="safety",
            safety_state=exc.phase_state,
            rounds=None,
        )
        raise
    if not safety.exists:
        return QuotientResult(
            problem=problem,
            exists=False,
            converter=None,
            safety=safety,
            progress=None,
        )
    assert safety.spec is not None

    from ..persist.checkpoint import completed_safety_state

    try:
        progress = progress_phase(
            problem,
            safety.spec,
            safety.f,
            budget=budget,
            interrupt=interrupt,
            resume=progress_resume,
        )
    except (BudgetExceeded, InterruptRequested) as exc:
        _attach_checkpoint(
            exc,
            problem,
            phase="progress",
            safety_state=completed_safety_state(safety),
            rounds=(exc.phase_state or {"rounds": ()})["rounds"],
        )
        raise

    c0_relabeled, c0_f = _relabel_with_f(safety.spec)

    if not progress.exists:
        return QuotientResult(
            problem=problem,
            exists=False,
            converter=None,
            c0=c0_relabeled,
            c0_f=c0_f,
            safety=safety,
            progress=progress,
        )
    assert progress.spec is not None

    with obs.span("finalize") as sp:
        final = prune_unreachable(progress.spec)
        converter, f = _relabel_with_f(final)
        converter = converter.renamed(
            f"C({problem.service.name}/{problem.component.name})"
        )
        sp.set(states=len(converter.states), transitions=len(converter.external))
        obs.gauge("quotient.converter.states", len(converter.states))
        obs.gauge("quotient.converter.transitions", len(converter.external))

    verification: SatisfactionReport | None = None
    if verify:
        try:
            with obs.span("verify"):
                verification = verify_converter(
                    problem, converter, budget=budget, interrupt=interrupt
                )
        except (BudgetExceeded, InterruptRequested) as exc:
            # both phases are complete; a resume redoes only verification
            _attach_checkpoint(
                exc,
                problem,
                phase="verify",
                safety_state=completed_safety_state(safety),
                rounds=progress.rounds,
            )
            raise

    return QuotientResult(
        problem=problem,
        exists=True,
        converter=converter,
        f=f,
        c0=c0_relabeled,
        c0_f=c0_f,
        safety=safety,
        progress=progress,
        verification=verification,
    )


def verify_converter(
    problem: QuotientProblem,
    converter: Specification,
    *,
    budget: Budget | None = None,
    interrupt: "InterruptController | None" = None,
) -> SatisfactionReport:
    """Independently check ``B ‖ converter`` satisfies the service.

    Raises :class:`QuotientError` when the check fails — for converters
    produced by :func:`solve_quotient` this is an internal-consistency
    failure; for hand-written converters it is the answer to "is this
    converter correct?" (catch the exception or call
    :func:`repro.satisfy.satisfies` directly for a non-raising check).
    An optional *budget* bounds the verification composition; an optional
    *interrupt* lets it be cancelled cooperatively.
    """
    composite = compose(
        problem.component, converter, budget=budget, interrupt=interrupt
    )
    report = satisfies(composite, problem.service)
    if not report.holds:
        raise QuotientError(
            "converter failed independent verification:\n" + report.describe()
        )
    return report
