"""Problem and result types for the quotient algorithm (Section 4).

A quotient problem is: given a service ``A`` over ``Ext`` and a composite of
existing protocol components ``B`` over ``Int ∪ Ext`` (Int, Ext disjoint),
find ``C`` over ``Int`` such that ``B ‖ C`` satisfies ``A`` — or show none
exists.

The converter states computed by the algorithm *are* the paper's ``f``/``h``
encoding: canonical frozensets of ``(a, b)`` pairs, where ``a`` is the
service hub state ``ψ_A.(o.t)`` and ``b`` a possible current state of ``B``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import QuotientError
from ..events import Interface
from ..obs import MetricsSnapshot
from ..spec.normal_form import assert_normal_form
from ..spec.spec import Specification, State

Pair = tuple[State, State]
"""An ``(a, b)`` pair: service hub state × component state."""

PairSet = frozenset[Pair]
"""A converter state in the paper's encoding: the value ``f.c = h.r``."""


@dataclass(frozen=True)
class QuotientProblem:
    """A validated quotient-problem instance.

    Construction checks the paper's preconditions:

    * ``Σ_A = Ext`` exactly;
    * ``Σ_B = Int ∪ Ext`` exactly, with Int and Ext disjoint (enforced by
      :class:`~repro.events.Interface`);
    * ``A`` in normal form.
    """

    service: Specification
    component: Specification
    interface: Interface

    def __post_init__(self) -> None:
        if frozenset(self.service.alphabet) != frozenset(self.interface.ext_events):
            raise QuotientError(
                f"service alphabet {self.service.alphabet.sorted()} must equal "
                f"Ext {self.interface.ext_events.sorted()}"
            )
        if frozenset(self.component.alphabet) != frozenset(self.interface.full):
            raise QuotientError(
                f"component alphabet {self.component.alphabet.sorted()} must "
                f"equal Int ∪ Ext {self.interface.full.sorted()}"
            )
        assert_normal_form(self.service)

    @classmethod
    def build(
        cls,
        service: Specification,
        component: Specification,
        int_events: Iterable[str] | None = None,
    ) -> "QuotientProblem":
        """Infer the interface: ``Ext = Σ_A``, ``Int = Σ_B − Σ_A``.

        Pass *int_events* to validate the inferred Int against expectation.
        """
        ext = service.alphabet
        inferred_int = component.alphabet - ext
        if int_events is not None and frozenset(int_events) != frozenset(inferred_int):
            raise QuotientError(
                f"declared Int {sorted(int_events)} does not match inferred "
                f"Σ_B − Σ_A = {inferred_int.sorted()}"
            )
        return cls(service, component, Interface(inferred_int, ext))


@dataclass(frozen=True)
class SafetyPhaseResult:
    """Output of the Fig. 5 safety phase.

    ``spec`` is ``C0`` — the converter with the largest trace set consistent
    with safety of ``B ‖ C`` — with pair-set states; ``None`` when even the
    empty trace is unsafe (``¬ok.(h.ε)``), i.e. no quotient exists with
    respect to safety.  ``f`` maps each state to its pair set (the identity
    on our encoding, kept explicit for reporting and for the progress
    phase).  ``explored`` counts pair sets examined, including rejected
    ones.
    """

    spec: Specification | None
    f: dict[State, PairSet]
    explored: int
    rejected: int

    @property
    def exists(self) -> bool:
        return self.spec is not None


@dataclass(frozen=True)
class ProgressRound:
    """One iteration of the Fig. 6 loop: which states were marked bad."""

    round_index: int
    bad_states: frozenset[State]
    remaining: int


@dataclass(frozen=True)
class ProgressPhaseResult:
    """Output of the Fig. 6 progress phase.

    ``spec`` is the final converter (``None`` when the initial state was
    removed — no quotient exists); ``rounds`` records each iteration for
    diagnostics and for the complexity benchmarks.
    """

    spec: Specification | None
    rounds: tuple[ProgressRound, ...]

    @property
    def exists(self) -> bool:
        return self.spec is not None


@dataclass(frozen=True)
class QuotientResult:
    """Full outcome of a quotient computation.

    * ``exists`` — whether a converter exists for the inputs;
    * ``converter`` — the final converter with compact integer states
      (``None`` when no converter exists);
    * ``f`` — the paper's ``f`` function: converter state → pair set;
    * ``c0`` — the safety-phase machine (before progress pruning), also
      with integer states, or ``None`` if even safety was unsolvable;
    * ``c0_f`` — pair sets of the safety-phase machine;
    * ``safety`` / ``progress`` — per-phase records;
    * ``verification`` — the independent satisfaction report of
      ``B ‖ converter`` against the service (populated when the solver was
      asked to verify and a converter exists);
    * ``stats`` — the :class:`~repro.obs.MetricsSnapshot` collected during
      the run (populated only when an :mod:`repro.obs` collector was
      recording; ``None`` under the default no-op collector);
    * ``degradations`` — structured
      :class:`~repro.quotient.parallel.DegradedExecution` records, one
      per parallel executor that exhausted its worker-respawn budget and
      drained sequentially.  Empty on every healthy run; when non-empty
      the result is still exact, but the run limped.
    """

    problem: QuotientProblem
    exists: bool
    converter: Specification | None
    f: dict[State, PairSet] = field(default_factory=dict)
    c0: Specification | None = None
    c0_f: dict[State, PairSet] = field(default_factory=dict)
    safety: SafetyPhaseResult | None = None
    progress: ProgressPhaseResult | None = None
    verification: object | None = None
    stats: MetricsSnapshot | None = None
    degradations: tuple = ()

    def __bool__(self) -> bool:
        return self.exists

    def phase_counters(self) -> dict:
        """Phase-level counters as a JSON-ready dict.

        Always available (derived from the per-phase records the solver
        keeps), independent of whether an obs collector was recording.
        ``emptied_by`` names the phase that proved nonexistence
        (``"safety"`` / ``"progress"``), or is ``None`` when a converter
        exists.
        """
        emptied_by = None
        if not self.exists:
            emptied_by = (
                "safety"
                if self.safety is None or not self.safety.exists
                else "progress"
            )
        counters: dict = {"emptied_by": emptied_by}
        if self.safety is not None:
            counters["safety"] = {
                "exists": self.safety.exists,
                "pairs_explored": self.safety.explored,
                "pairs_rejected": self.safety.rejected,
                "states_surviving": (
                    len(self.c0.states) if self.c0 is not None else 0
                ),
                "transitions": (
                    len(self.c0.external) if self.c0 is not None else 0
                ),
            }
        if self.progress is not None:
            counters["progress"] = {
                "exists": self.progress.exists,
                "rounds": [
                    {
                        "round": r.round_index,
                        "removed": len(r.bad_states),
                        "remaining": r.remaining,
                    }
                    for r in self.progress.rounds
                ],
                "states_removed": sum(
                    len(r.bad_states) for r in self.progress.rounds
                ),
            }
        return counters

    def to_json_dict(self) -> dict:
        """The machine-readable outcome (the CLI's ``solve --format json``).

        Contains the verdict, the phase counters (so an empty result says
        *which* phase emptied the machine and how many pairs survived
        safety), the converter shape, the verification verdict, and — when
        an obs collector was recording — the full metrics snapshot.
        """
        payload: dict = {
            "version": 1,
            "service": self.problem.service.name,
            "component": self.problem.component.name,
            "int_events": self.problem.interface.int_events.sorted(),
            "exists": self.exists,
            "phases": self.phase_counters(),
        }
        if self.converter is not None:
            payload["converter"] = {
                "name": self.converter.name,
                "states": len(self.converter.states),
                "transitions": len(self.converter.external),
                "alphabet": self.converter.alphabet.sorted(),
            }
        else:
            payload["converter"] = None
        if self.verification is not None:
            payload["verified"] = bool(getattr(self.verification, "holds", False))
        if self.stats is not None:
            payload["stats"] = self.stats.to_dict()
        if self.degradations:
            # only on unhealthy runs, so healthy outputs stay byte-stable
            payload["degradations"] = [
                d.to_json_dict() for d in self.degradations
            ]
        return payload

    def summary(self) -> str:
        lines = [
            f"quotient of {self.problem.service.name} by "
            f"{self.problem.component.name}:"
        ]
        if self.safety is None or not self.safety.exists:
            lines.append("  no quotient exists even with respect to safety "
                         "(¬ok.(h.ε))")
            return "\n".join(lines)
        assert self.c0 is not None
        lines.append(
            f"  safety phase: {len(self.c0.states)} states, "
            f"{len(self.c0.external)} transitions "
            f"({self.safety.explored} pair sets explored, "
            f"{self.safety.rejected} rejected)"
        )
        if self.progress is not None:
            removed = sum(len(r.bad_states) for r in self.progress.rounds)
            lines.append(
                f"  progress phase: {len(self.progress.rounds)} round(s), "
                f"{removed} state(s) removed"
            )
        if self.exists:
            assert self.converter is not None
            lines.append(
                f"  converter: {len(self.converter.states)} states, "
                f"{len(self.converter.external)} transitions"
            )
        else:
            lines.append("  NO converter exists: progress requirements "
                         "emptied the safety-phase machine")
        return "\n".join(lines)
