"""Structured diagnosis of converter nonexistence.

When the quotient is empty, the bare answer "no converter exists" is
correct but unhelpful to a protocol designer.  This module reconstructs
*where* the safety/progress conflict lives:

* the **conflict frontier** — the earliest converter states (shortest
  Int-trace witnesses) that the progress phase removed, i.e. the points of
  no return: any converter reaching them is doomed;
* for each frontier state, the **blocking pairs** ``(a, b)`` whose
  progress obligation could not be met, with the service's acceptance
  menu and the events the composite could still offer;
* an **ambiguity census**: frontier states whose pair sets contain the
  same component state ``b`` under *different* service hubs — the "cannot
  tell what happened" situations (exactly the data-vs-acknowledgement
  ambiguity of the paper's Section 5 example).

The diagnosis is computed from the records the solver already keeps; it
never re-runs the phases.  Findings are emitted as the structured
:class:`~repro.lint.Diagnostic` type (codes ``QUOT101``/``QUOT102``), so
``repro-converter diagnose`` and ``repro-converter lint`` share one
rendering path (text and JSON).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..events import Alphabet
from ..lint.diagnostics import (
    SEVERITY_ERROR,
    SEVERITY_WARNING,
    Diagnostic,
    LintReport,
    format_diagnostics,
)
from ..spec.graph import sink_acceptance_sets
from ..spec.spec import Specification, State, _state_sort_key
from ..traces.core import Trace, format_trace
from .progress_phase import _composite_tau_star
from .types import PairSet, QuotientResult

CODE_POINT_OF_NO_RETURN = "QUOT101"
CODE_AMBIGUITY = "QUOT102"
CODE_SAFETY_UNSOLVABLE = "QUOT103"


@dataclass(frozen=True)
class BlockingPair:
    """One unmet progress obligation at a frontier state."""

    service_hub: State
    component_state: State
    offered: Alphabet
    menu: tuple[Alphabet, ...]

    def describe(self) -> str:
        menu = " | ".join(
            "{" + ",".join(sorted(m)) + "}" for m in self.menu
        ) or "(none)"
        return (
            f"service at {self.service_hub!r} requires one of [{menu}] but "
            f"the composite can only ever offer "
            f"{{{','.join(sorted(self.offered))}}} "
            f"(component at {self.component_state!r})"
        )


@dataclass(frozen=True)
class FrontierState:
    """A point of no return: an earliest-removed converter state."""

    trace: Trace
    pairs: PairSet
    blocking: tuple[BlockingPair, ...]
    ambiguous_components: tuple[State, ...]

    def to_diagnostics(self) -> tuple[Diagnostic, ...]:
        """This frontier state as structured diagnostics.

        One ``QUOT101`` for the unmet progress obligations, plus a
        ``QUOT102`` when the state also exhibits the paper's
        cannot-tell-what-happened observational ambiguity.
        """
        lines = [
            f"after converter trace {format_trace(self.trace)} "
            f"({len(self.pairs)} possible (service, component) pairs):"
        ]
        lines.extend("  - " + b.describe() for b in self.blocking)
        diagnostics = [
            Diagnostic(
                code=CODE_POINT_OF_NO_RETURN,
                severity=SEVERITY_ERROR,
                message="\n".join(lines),
                rule="point-of-no-return",
                witness=self.trace,
                hint="any converter reaching this state is doomed; weaken "
                "the service's progress requirement or enrich the "
                "components' observable behaviour",
            )
        ]
        if self.ambiguous_components:
            diagnostics.append(
                Diagnostic(
                    code=CODE_AMBIGUITY,
                    severity=SEVERITY_WARNING,
                    message=(
                        f"after converter trace {format_trace(self.trace)}: "
                        "ambiguity — component state(s) "
                        f"{list(self.ambiguous_components)!r} are compatible "
                        "with different service histories; no future "
                        "observation can separate them"
                    ),
                    rule="observational-ambiguity",
                    witness=self.ambiguous_components,
                    hint="add a distinguishing message to the component "
                    "protocols (the paper's data-vs-acknowledgement "
                    "ambiguity, Section 5)",
                )
            )
        return tuple(diagnostics)

    def describe(self) -> str:
        return format_diagnostics(self.to_diagnostics())


@dataclass(frozen=True)
class NonexistenceDiagnosis:
    """Why no converter exists, in designer terms."""

    frontier: tuple[FrontierState, ...]
    removed_total: int
    rounds: int

    def to_diagnostics(self) -> tuple[Diagnostic, ...]:
        """All findings as structured diagnostics (the lint type)."""
        diagnostics: list[Diagnostic] = []
        for f in self.frontier:
            diagnostics.extend(f.to_diagnostics())
        return tuple(diagnostics)

    def to_report(self, *, target: str = "") -> LintReport:
        """Wrap the findings in a :class:`LintReport` (JSON/SARIF-ready).

        The diagnostics keep frontier order (shortest witness traces
        first) rather than the report's severity sort, so the narrative
        reads front to back.
        """
        return LintReport(self.to_diagnostics(), target=target)

    def describe(self) -> str:
        lines = [
            f"no converter exists: progress removed {self.removed_total} "
            f"state(s) over {self.rounds} round(s); "
            f"{len(self.frontier)} point(s) of no return:"
        ]
        text = format_diagnostics(self.to_diagnostics())
        if text:
            lines.append(text)
        return "\n".join(lines)


def safety_failure_diagnostic(result: QuotientResult) -> Diagnostic:
    """The ``¬ok.(h.ε)`` case as a structured diagnostic (``QUOT103``).

    Raises ``ValueError`` when the safety phase actually succeeded.
    """
    if result.safety is not None and result.safety.exists:
        raise ValueError("safety phase succeeded; no safety failure to report")
    problem = result.problem
    return Diagnostic(
        code=CODE_SAFETY_UNSOLVABLE,
        severity=SEVERITY_ERROR,
        message=(
            "ok(h.ε) fails — the component can violate the service's "
            "safety with no converter interaction at all: some trace of "
            f"{problem.component.name!r} projects onto Ext outside the "
            f"traces of {problem.service.name!r}"
        ),
        rule="safety-unsolvable",
        spec_name=problem.component.name,
        hint="no converter over Int can prevent this; restrict the "
        "component or weaken the service's trace set",
    )


def _shortest_traces(
    spec: Specification, targets: set[State]
) -> dict[State, Trace]:
    """Shortest trace (BFS over external transitions) to each target."""
    found: dict[State, Trace] = {}
    seen = {spec.initial}
    frontier: list[tuple[State, Trace]] = [(spec.initial, ())]
    if spec.initial in targets:
        found[spec.initial] = ()
    while frontier and len(found) < len(targets):
        next_frontier: list[tuple[State, Trace]] = []
        for state, trace in frontier:
            for e, s2 in spec.out_transitions(state):
                if s2 in seen:
                    continue
                seen.add(s2)
                t2 = trace + (e,)
                if s2 in targets and s2 not in found:
                    found[s2] = t2
                next_frontier.append((s2, t2))
        frontier = next_frontier
    return found


def diagnose_nonexistence(
    result: QuotientResult, *, max_frontier: int = 5
) -> NonexistenceDiagnosis:
    """Build a :class:`NonexistenceDiagnosis` from a failed quotient run.

    Requires the safety phase to have succeeded (``result.c0`` present)
    and the progress phase to have emptied the machine; raises
    ``ValueError`` otherwise.
    """
    if result.exists:
        raise ValueError("quotient succeeded; nothing to diagnose")
    if result.safety is None or not result.safety.exists:
        raise ValueError(
            "safety phase failed outright (ok(h.ε) is false): the component "
            "violates the service with no converter involvement"
        )
    assert result.progress is not None and result.c0 is not None
    problem = result.problem

    # earliest removals: round-0 bad states, reachable ones first
    first_round = result.progress.rounds[0]
    # result.c0 is relabeled; map pair-set bad states through c0_f
    label_of = {pairset: label for label, pairset in result.c0_f.items()}
    bad_labels = {
        label_of[p] for p in first_round.bad_states if p in label_of
    }
    traces = _shortest_traces(result.c0, bad_labels)
    chosen = sorted(
        traces.items(), key=lambda item: (len(item[1]), item[1])
    )[:max_frontier]

    # recompute the progress obligations for the chosen states against the
    # full safety-phase machine (same context the phase used in round 0)
    c0_by_pairs = {label: result.c0_f[label] for label, _ in chosen}
    needed = [
        (b, result.c0_f[label])
        for label, _ in chosen
        for (_, b) in c0_by_pairs[label]
    ]
    # τ* is computed on the pair-set-labeled machine the phases used; we
    # rebuild it from the relabeled machine by mapping states back
    pairset_spec = _relabel_back(result.c0, result.c0_f)
    offered = _composite_tau_star(
        problem, pairset_spec, [(b, ps) for (b, ps) in needed]
    )

    frontier_states: list[FrontierState] = []
    for label, trace in chosen:
        pairs = result.c0_f[label]
        blocking: list[BlockingPair] = []
        by_component: dict[State, set[State]] = {}
        for a, b in sorted(
            pairs, key=lambda p: (_state_sort_key(p[0]), _state_sort_key(p[1]))
        ):
            by_component.setdefault(b, set()).add(a)
            menu = tuple(sink_acceptance_sets(problem.service, a))
            offer = offered[(b, pairs)]
            if not any(accept <= offer for accept in menu):
                blocking.append(
                    BlockingPair(
                        service_hub=a,
                        component_state=b,
                        offered=offer,
                        menu=menu,
                    )
                )
        ambiguous = tuple(
            sorted(
                (b for b, hubs in by_component.items() if len(hubs) > 1),
                key=_state_sort_key,
            )
        )
        frontier_states.append(
            FrontierState(
                trace=trace,
                pairs=pairs,
                blocking=tuple(blocking),
                ambiguous_components=ambiguous,
            )
        )

    removed_total = sum(
        len(r.bad_states) for r in result.progress.rounds
    )
    return NonexistenceDiagnosis(
        frontier=tuple(frontier_states),
        removed_total=removed_total,
        rounds=len(result.progress.rounds),
    )


def _relabel_back(
    c0: Specification, c0_f: dict[State, PairSet]
) -> Specification:
    """Rebuild the pair-set-labeled safety-phase machine from the compact
    integer-labeled one the solver returns."""
    return c0.map_states(dict(c0_f))
