"""Resource budgets for bounded solving (graceful degradation).

Fault-inflated composites can blow the quotient's pair-set lattice up by
orders of magnitude (see :mod:`repro.faults`): a severity-3 reordering
channel multiplies the product state space before the safety phase even
starts.  Rather than letting such a solve run away with unbounded memory
and time, callers pass a :class:`Budget` and the exploration loops charge
every unit of work against it.  When a limit trips, the loop raises a
structured :class:`~repro.errors.BudgetExceeded` carrying the partial
phase statistics and the frontier size at the moment of interruption —
the solve *degrades* into a report instead of degrading the host.

Design constraints:

* **Zero overhead when unbudgeted.**  Every budgeted loop takes
  ``budget: Budget | None = None`` and only instantiates a meter when a
  budget is present; the ``None`` path adds a single falsy check per call.
* **Determinism for count limits.**  ``max_pairs`` and ``max_states``
  trip at exactly the same unit of work on the kernel and reference
  paths (the two explorations mirror each other step for step), so a
  count-bounded run is reproducible and differential-testable.
  ``wall_time_s`` is inherently machine-dependent; it is checked every
  :data:`TIME_CHECK_INTERVAL` charges to keep the hot loop cheap.
* **Byte-identical results under the limit.**  A budget that is never
  hit must not change any output: the meter only observes counts that
  the loops already maintain.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from .. import obs
from ..errors import BudgetExceeded, InterruptRequested
from ..obs.progress import current_reporter

if TYPE_CHECKING:
    # type-only: the controller is duck-typed at runtime (``tick()``), so
    # the budget module never imports repro.persist
    from ..obs.progress import ProgressReporter
    from ..persist.interrupt import InterruptController

__all__ = [
    "Budget",
    "BudgetExceeded",
    "BudgetMeter",
    "InterruptRequested",
    "TIME_CHECK_INTERVAL",
    "make_meter",
]

#: How many count charges pass between wall-clock checks.  Chosen so the
#: ``time.monotonic`` call disappears from profiles while a runaway solve
#: is still interrupted within a few hundred microseconds of its deadline.
TIME_CHECK_INTERVAL = 256


@dataclass(frozen=True)
class Budget:
    """Resource limits for one solve / composition.

    ``max_pairs``
        Ceiling on pair(-set) evaluations in the quotient phases: safety
        counts candidate pair sets examined (the phase's ``explored``
        counter), progress counts ``(b, c)`` product pairs checked across
        rounds.
    ``max_states``
        Ceiling on distinct states materialized by an exploration: product
        states in ``compose``, surviving pair-set states in the safety
        phase.
    ``wall_time_s``
        Soft wall-clock ceiling in seconds, measured from the first charge
        against the meter.  Checked periodically (not per unit of work),
        so overruns are bounded by one check interval.

    ``None`` disables a limit; ``Budget()`` is the "unlimited" budget and
    behaves identically to passing no budget at all.
    """

    max_pairs: int | None = None
    max_states: int | None = None
    wall_time_s: float | None = None

    def __post_init__(self) -> None:
        for field_name in ("max_pairs", "max_states"):
            value = getattr(self, field_name)
            if value is not None and value < 1:
                raise ValueError(f"{field_name} must be >= 1, got {value!r}")
        if self.wall_time_s is not None and self.wall_time_s <= 0:
            raise ValueError(
                f"wall_time_s must be positive, got {self.wall_time_s!r}"
            )

    @property
    def unlimited(self) -> bool:
        return (
            self.max_pairs is None
            and self.max_states is None
            and self.wall_time_s is None
        )

    def meter(self, phase: str) -> "BudgetMeter":
        """A fresh meter charging against this budget for *phase*."""
        return BudgetMeter(self, phase)

    def to_json_dict(self) -> dict:
        return {
            "max_pairs": self.max_pairs,
            "max_states": self.max_states,
            "wall_time_s": self.wall_time_s,
        }


class BudgetMeter:
    """Charges units of work against a :class:`Budget` for one phase.

    A meter is cheap enough to sit inside the kernel's hot loops: the
    count checks are two comparisons, and the wall-clock read happens
    once per :data:`TIME_CHECK_INTERVAL` charges.  ``charge`` raises
    :class:`BudgetExceeded` with the partial statistics supplied by the
    caller at the moment the limit trips.

    *interrupt* (an :class:`~repro.persist.InterruptController`, or
    anything with its ``tick()`` protocol) hooks cooperative interruption
    into the same boundaries: every charge ticks the controller, and a
    pending SIGINT / deadline / deterministic test point raises
    :class:`~repro.errors.InterruptRequested`.  *progress* (a
    :class:`~repro.obs.progress.ProgressReporter`, duck-typed via
    ``tick(meter, frontier)``) receives one call per charge so live
    heartbeats stream from the same work-unit boundaries; the reporter
    only observes the meter's counters, so outputs stay byte-identical
    with progress on or off.  *clock* is injectable so wall-time
    behaviour is testable without real elapsed time.
    """

    __slots__ = (
        "budget",
        "phase",
        "pairs",
        "states",
        "interrupt",
        "progress",
        "_clock",
        "_started",
        "_ticks",
        "_units",
        "duplicate_units",
    )

    def __init__(
        self,
        budget: Budget,
        phase: str,
        *,
        interrupt: "InterruptController | None" = None,
        progress: "ProgressReporter | None" = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.budget = budget
        self.phase = phase
        self.pairs = 0
        self.states = 0
        self.interrupt = interrupt
        self.progress = progress
        self._clock = clock
        self._started = clock()
        # start one tick short of the interval so the very first charge
        # performs a wall-clock check: short phases (fewer charges than
        # one interval) would otherwise never see their deadline at all
        self._ticks = TIME_CHECK_INTERVAL - 1
        # unit-id → (pairs, states), populated only by charge_unit/absorb;
        # None keeps plain charge() free of any per-unit bookkeeping
        self._units: dict[object, tuple[int, int]] | None = None
        # units seen more than once (recovered/duplicated work whose
        # re-charge was suppressed) — the supervision tests read this
        self.duplicate_units = 0

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._started

    def _partial(self, frontier: int) -> dict:
        return {
            "pairs": self.pairs,
            "states": self.states,
            "elapsed_s": round(self.elapsed(), 6),
            "frontier": frontier,
        }

    def _exceed(self, limit: str, *, frontier: int = 0) -> BudgetExceeded:
        stats = self._partial(frontier)
        limits = self.budget.to_json_dict()
        return BudgetExceeded(
            f"budget exceeded in {self.phase} phase: {limit} limit "
            f"({limits[limit]!r}) hit after {self.pairs} pair(s), "
            f"{self.states} state(s), {stats['elapsed_s']}s "
            f"(frontier {frontier})",
            phase=self.phase,
            limit=limit,
            partial=stats,
        )

    def _interrupted(self, reason: str, *, frontier: int) -> InterruptRequested:
        return InterruptRequested(
            f"interrupted in {self.phase} phase: {reason} "
            f"(after {self.pairs} pair(s), {self.states} state(s))",
            phase=self.phase,
            reason=reason,
            partial=self._partial(frontier),
        )

    def charge(
        self,
        *,
        pairs: int = 0,
        states: int = 0,
        frontier: int = 0,
        snapshot: Callable[[], dict] | None = None,
    ) -> None:
        """Record work; raise on a tripped limit or pending interrupt.

        *frontier* is informational: the size of the worklist at the
        charge site, reported in the error's partial stats so callers can
        see how much exploration was still pending.  *snapshot* is a
        zero-argument callable capturing the phase's loop state; it is
        invoked **only** when an exception is about to be raised, and its
        result is attached as ``phase_state`` so the solver can build an
        exact-resume checkpoint.  Charge sites place their charges *after*
        fully processing one unit of work, so the snapshot is always
        consistent.
        """
        budget = self.budget
        self.pairs += pairs
        self.states += states
        if self.progress is not None:
            self.progress.tick(self, frontier)
        err: BudgetExceeded | InterruptRequested | None = None
        if self.interrupt is not None:
            reason = self.interrupt.tick()
            if reason is not None:
                err = self._interrupted(reason, frontier=frontier)
        if err is None:
            if budget.max_pairs is not None and self.pairs > budget.max_pairs:
                err = self._exceed("max_pairs", frontier=frontier)
            elif (
                budget.max_states is not None
                and self.states > budget.max_states
            ):
                err = self._exceed("max_states", frontier=frontier)
            elif budget.wall_time_s is not None:
                self._ticks += 1
                if self._ticks >= TIME_CHECK_INTERVAL:
                    self._ticks = 0
                    if self.elapsed() > budget.wall_time_s:
                        err = self._exceed("wall_time_s", frontier=frontier)
        if err is not None:
            if snapshot is not None:
                err.phase_state = snapshot()
            if isinstance(err, InterruptRequested):
                obs.event("interrupt", phase=self.phase, reason=err.reason)
            else:
                obs.event("budget.exceeded", phase=self.phase, limit=err.limit)
            raise err

    # ------------------------------------------------------------------
    # per-unit accounting (sharded exploration; see repro.quotient.parallel)
    # ------------------------------------------------------------------
    def charge_unit(
        self,
        unit_id,
        *,
        pairs: int = 0,
        states: int = 0,
        frontier: int = 0,
        snapshot: Callable[[], dict] | None = None,
    ) -> None:
        """Charge one unit of work exactly once, keyed by *unit_id*.

        A unit charged again under the same id — a shard stolen back by
        the coordinator and later also reported by the pool, or a replay
        after :meth:`absorb` — is a no-op, so merged accounting never
        double-counts.  Unit ids must be hashable and unique per unit of
        work (the parallel loops use ``(pair_codes, event_index)``).
        """
        if self._units is None:
            self._units = {}
        if unit_id in self._units:
            self.duplicate_units += 1
            return
        self._units[unit_id] = (pairs, states)
        self.charge(pairs=pairs, states=states, frontier=frontier,
                    snapshot=snapshot)

    def fork(self) -> "BudgetMeter":
        """A shard meter for the same budget and phase.

        The child charges the shared limits against its *own* counters
        (a shard sees only its slice of the work, so its counts cannot
        trip a limit the whole phase would not), tracks unit ids from
        birth, and is merged back with :meth:`absorb`.  Interrupt and
        progress hooks stay on the parent — the coordinator is the only
        place where trip points must be deterministic.
        """
        child = BudgetMeter(self.budget, self.phase, clock=self._clock)
        child._units = {}
        return child

    def absorb(self, child: "BudgetMeter") -> None:
        """Merge a forked shard meter's per-unit charges into this one.

        Units the parent has already charged (stolen shards, overlapping
        re-splits) are skipped; the remainder is replayed in the child's
        charge order, so a limit that trips during absorption trips at a
        deterministic unit regardless of how the shards were scheduled.
        """
        if child._units is None:
            return
        if self._units is None:
            self._units = {}
        for unit_id, (pairs, states) in child._units.items():
            if unit_id in self._units:
                continue
            self._units[unit_id] = (pairs, states)
            self.charge(pairs=pairs, states=states)


def make_meter(
    budget: Budget | None,
    phase: str,
    interrupt: "InterruptController | None" = None,
) -> BudgetMeter | None:
    """A meter for *phase* when anything needs charging, else ``None``.

    The phases call this instead of constructing meters directly: a
    meter is needed when a non-trivial budget is present, an interrupt
    controller is attached (interruption works without any budget), *or*
    a progress reporter is installed (heartbeats stream from the charge
    boundaries even on unbudgeted runs).  The ``None`` fast path keeps
    plain runs at a single falsy check per charge site.
    """
    progress = current_reporter()
    if (
        (budget is None or budget.unlimited)
        and interrupt is None
        and progress is None
    ):
        return None
    return BudgetMeter(budget if budget is not None else Budget(), phase,
                       interrupt=interrupt, progress=progress)
