"""Sharded parallel state-space exploration with a deterministic merge.

The quotient's two explorations — the Fig. 5 safety frontier and the
per-round ``τ*`` crawl of the Fig. 6 progress phase — bottom out in pure
functions of individual work units: every Int-event extension of a pair
set, and every product node's successor batch, depends only on its inputs.
This module farms those units out to a :mod:`multiprocessing` pool while
the coordinating process replays the **exact sequential merge order**, so
every observable output — converter, counterexamples, deterministic work
counters, budget trip points, checkpoints — is byte-identical to the
single-threaded kernel at any worker count.

Design:

* **Speculative fan-out, canonical merge.**  The safety loop submits each
  *discovered* pair-set state to the pool immediately (one task computes
  all of its Int-event extensions), but consumes results in FIFO worklist
  order — the sequential order.  The coordinator is the only process that
  touches the meter, the worklist, and the snapshot closure, so charges,
  trips, and checkpoints land on the same unit of work as the sequential
  loop.
* **Work-stealing.**  Tasks sit in a coordinator-side backlog and are fed
  to the pool a bounded window at a time; idle workers drain the shared
  queue (stealing from each other), and when the coordinator needs a
  result whose task has not yet been handed over, it steals the unit back
  and computes it inline rather than stalling.  Stolen units are charged
  through :meth:`~repro.quotient.budget.BudgetMeter.charge_unit`, whose
  per-unit dedup makes double submission harmless.
* **Sharded τ*.**  A progress round's seed nodes are split round-robin
  into per-worker chunks; each shard crawls its reachable subgraph, and
  because successor batches are pure, the union of the shard adjacencies
  *is* the sequential adjacency.  Tarjan condensation and the bad-state
  check stay in the coordinator.

Workers are spawned once per phase with the pickled
:class:`~repro.quotient.types.QuotientProblem` and compile it in their
initializer; tasks then ship only pair codes.  Scheduling statistics are
aggregated into ``obs`` as ``kernel.parallel.*`` — those counters reflect
timing (how much was stolen vs pooled) and are the only outputs allowed
to vary across runs.

Worker counts come from ``--workers N`` / ``REPRO_WORKERS`` through
:func:`use_workers`; ``workers <= 1`` never touches this module (the
phase kernels bypass the pool entirely — see ``tests/test_parallel_kernel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

from .. import chaos, obs
from ..obs.progress import current_reporter
from .types import PairSet, QuotientProblem

__all__ = [
    "DegradedExecution",
    "ShardExecutor",
    "SerialExecutor",
    "default_workers",
    "drain_degradations",
    "effective_workers",
    "use_workers",
    "safety_explore_parallel",
    "parallel_round_adjacency",
]

#: How many tasks beyond the worker count are kept in flight per worker.
#: Larger windows hide result latency; smaller ones keep more of the
#: backlog stealable by the coordinator.
PIPELINE_DEPTH = 8

#: Wall-clock ceiling on one pooled task before the coordinator declares
#: it lost and re-executes it inline (``REPRO_TASK_DEADLINE`` overrides).
#: Individual tasks are milliseconds of work; a task this late means its
#: worker is dead or wedged.
DEFAULT_TASK_DEADLINE_S = 60.0

#: Worker deaths tolerated (the pool respawns them) before the executor
#: stops trusting the pool and degrades to sequential draining
#: (``REPRO_RESPAWN_BUDGET`` overrides).
DEFAULT_RESPAWN_BUDGET = 3

#: How long one blocking poll on a pending pool result waits before the
#: supervisor re-checks worker liveness and the task deadline.
DEFAULT_POLL_S = 0.05


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name)
    if raw:
        try:
            return float(raw)
        except ValueError:
            return default
    return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    if raw:
        try:
            return int(raw)
        except ValueError:
            return default
    return default


# ----------------------------------------------------------------------
# worker-count configuration (CLI --workers / REPRO_WORKERS / context)
# ----------------------------------------------------------------------
_ACTIVE: int | None = None


def default_workers() -> int:
    """The ambient worker count: ``REPRO_WORKERS`` or 1 (sequential)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return 1
        if value >= 1:
            return value
    return 1


def effective_workers() -> int:
    """The worker count the phase kernels should dispatch on."""
    return _ACTIVE if _ACTIVE is not None else default_workers()


@contextmanager
def use_workers(workers: int | None) -> Iterator[None]:
    """Scope an explicit worker count (``None`` defers to the ambient one)."""
    global _ACTIVE
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    previous = _ACTIVE
    _ACTIVE = workers
    try:
        yield
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# worker-process side: one compiled problem per process, pure task fns
# ----------------------------------------------------------------------
_WORKER_CP = None


def _init_worker(problem: QuotientProblem, plan=None) -> None:
    """Pool initializer: compile the problem once in this worker.

    *plan* is the run's :class:`~repro.chaos.ChaosPlan` (or ``None``);
    installing it per worker gives each process its own fault counters,
    so ``kill_at=(2,)`` kills *every* worker at its third task.
    """
    global _WORKER_CP
    from .kernel import CompiledProblem

    _WORKER_CP = CompiledProblem(problem)
    if plan is not None:
        chaos.set_chaos(plan)


def _chaos_task_boundary() -> None:
    """Worker-side chaos seam: die, wedge, or fail at this task.

    One global ``None`` check when chaos is off.  A *kill* exits the
    process hard (the pool respawns a replacement; the in-flight task is
    lost and must be recovered by the coordinator); a *hang* sleeps
    ``hang_s`` so the coordinator's task deadline fires first; a *raise*
    surfaces as the task's result.
    """
    state = chaos.active()
    if state is None:
        return
    if not state.plan.site_enabled("worker.task"):
        return
    n = state.next_index("worker.task")
    plan = state.plan
    if plan.kill_worker(n):
        os._exit(3)
    if plan.hang_worker(n):
        time.sleep(plan.hang_s)
    if plan.raise_in_worker(n):
        raise OSError(f"chaos: injected worker fault at task {n}")


def _safety_state_task(codes: frozenset[int]):
    """All Int-event extensions of one safety pair-set state."""
    _chaos_task_boundary()
    cp = _WORKER_CP
    return tuple(cp.extend(codes, k) for k in range(len(cp.int_events)))


def _progress_chunk_task(ctx, seeds):
    """The internal product subgraph reachable from one seed shard."""
    from .kernel import _adjacency_from

    _chaos_task_boundary()
    succ_c, alive, m = ctx
    return _adjacency_from(_WORKER_CP, succ_c, alive, m, seeds)


def _run_local(cp, kind: str, args):
    """Coordinator-side (steal-back) evaluation of one task."""
    if kind == "safety":
        (codes,) = args
        return tuple(cp.extend(codes, k) for k in range(len(cp.int_events)))
    if kind == "adjacency":
        from .kernel import _adjacency_from

        ctx, seeds = args
        succ_c, alive, m = ctx
        return _adjacency_from(cp, succ_c, alive, m, seeds)
    raise ValueError(f"unknown task kind {kind!r}")


_TASK_FNS: dict[str, Callable] = {
    "safety": _safety_state_task,
    "adjacency": _progress_chunk_task,
}


# ----------------------------------------------------------------------
# degraded execution: the structured "we survived, but limped" record
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DegradedExecution:
    """One executor's fall from parallel to sequential draining.

    Raised never — *recorded*: when an executor exhausts its respawn
    budget (or the pool stops accepting work), it drains the remaining
    units inline instead of failing the solve, and this record lands in
    ``QuotientResult.stats`` (as the ``executor.degraded`` instant
    event), in ``result.degradations``, and — through the CLI — in the
    run ledger, so an operator can see that the answer is exact but the
    machine it ran on was not healthy.
    """

    reason: str
    worker_deaths: int
    pending_units: int

    def to_json_dict(self) -> dict:
        return {
            "reason": self.reason,
            "worker_deaths": self.worker_deaths,
            "pending_units": self.pending_units,
        }


#: Degradations recorded since the last drain (bounded; one entry per
#: degraded executor, at most two executors per solve).
_DEGRADATIONS: list[DegradedExecution] = []
_MAX_DEGRADATIONS = 100


def record_degradation(degradation: DegradedExecution) -> None:
    """Register a degradation: obs event, progress note, drainable record."""
    if len(_DEGRADATIONS) < _MAX_DEGRADATIONS:
        _DEGRADATIONS.append(degradation)
    obs.event(
        "executor.degraded",
        reason=degradation.reason,
        worker_deaths=degradation.worker_deaths,
        pending_units=degradation.pending_units,
    )
    reporter = current_reporter()
    if reporter is not None:
        reporter.note(degraded=degradation.reason)


def drain_degradations() -> tuple[DegradedExecution, ...]:
    """Collect (and clear) the degradations recorded since the last call."""
    out = tuple(_DEGRADATIONS)
    _DEGRADATIONS.clear()
    return out


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
_LOST = object()  # sentinel: a pooled task whose result will never arrive


class ShardExecutor:
    """Supervised work-stealing task executor over a multiprocessing pool.

    Tasks enter a coordinator-side backlog; :meth:`_pump` keeps a bounded
    window of them in the pool's shared queue (idle workers steal from
    that queue), and :meth:`result` either consumes a pool result or
    steals a still-backlogged unit back for inline evaluation.  The
    executor never reorders anything the caller observes: results are
    handed back for exactly the key requested.

    **Supervision.**  Because every task is a pure function of its
    payload, the coordinator can always re-execute one inline — so no
    worker failure is fatal:

    * A pending result is polled in :data:`DEFAULT_POLL_S` slices; when a
      worker death is observed while waiting (heartbeat, see below), or
      the per-task deadline (``task_deadline_s`` /
      ``REPRO_TASK_DEADLINE``) expires, the unit is declared lost and
      recomputed inline from its retained payload
      (``stats["recovered"]``).  A worker that raises is handled the
      same way: deterministic failures still fail (the inline replay
      raises too), transient ones heal.
    * The **heartbeat** watches the pool's worker pids: the pool respawns
      dead workers automatically, so new pids mean deaths
      (``stats["worker_deaths"]``).  When deaths exceed
      ``respawn_budget`` (``REPRO_RESPAWN_BUDGET``), the executor stops
      trusting the pool entirely: it terminates it, records a
      :class:`DegradedExecution`, and drains every remaining unit
      inline — the solve completes sequentially instead of aborting.
    * Re-executed or duplicated units are charged through
      :meth:`~repro.quotient.budget.BudgetMeter.charge_unit`, whose
      per-unit dedup keeps the budget charged exactly once per unit —
      outputs stay byte-identical under any crash schedule.

    The executor is a context manager; :meth:`close` is idempotent and
    terminates/joins the pool, so no exception path leaks worker
    processes.  Chaos seams (:mod:`repro.chaos`) inject worker kills and
    hangs (pool initializer) and result delays/duplicates (the pump);
    all are inert when no plan is active.
    """

    def __init__(
        self,
        problem: QuotientProblem,
        workers: int,
        *,
        start_method: str | None = None,
        pool_factory: Callable | None = None,
        task_deadline_s: float | None = None,
        respawn_budget: int | None = None,
        poll_s: float = DEFAULT_POLL_S,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        from .kernel import compiled_problem

        self._cp = compiled_problem(problem)
        self.workers = workers
        self._backlog: deque = deque()
        self._payload: dict = {}
        self._inflight: dict = {}
        self._done: dict = {}
        self._delayed: dict = {}  # key -> [value, pumps_remaining] (chaos)
        self._stale: dict = {}    # key -> chaos-duplicated value
        self._high_water = workers * PIPELINE_DEPTH
        self.stats = {
            "tasks": 0,
            "stolen": 0,
            "pool_results": 0,
            "recovered": 0,
            "worker_deaths": 0,
            "duplicates": 0,
        }
        self.task_deadline_s = (
            task_deadline_s
            if task_deadline_s is not None
            else _env_float("REPRO_TASK_DEADLINE", DEFAULT_TASK_DEADLINE_S)
        )
        self.respawn_budget = (
            respawn_budget
            if respawn_budget is not None
            else _env_int("REPRO_RESPAWN_BUDGET", DEFAULT_RESPAWN_BUDGET)
        )
        self.poll_s = poll_s
        self._clock = clock
        self.degraded: DegradedExecution | None = None
        self._closed = False
        state = chaos.active()
        plan = state.plan if state is not None else None
        worker_plan = plan if plan is not None and plan.wants_workers else None
        if pool_factory is not None:
            self._pool = pool_factory(problem, workers, worker_plan)
        else:
            method = start_method or os.environ.get("REPRO_MP_START") or "fork"
            if method not in multiprocessing.get_all_start_methods():
                method = multiprocessing.get_start_method()
            ctx = multiprocessing.get_context(method)
            self._pool = ctx.Pool(
                workers, initializer=_init_worker, initargs=(problem, worker_plan)
            )
        self._seen_pids: set[int] = set()
        self._observe_workers()

    # ------------------------------------------------------------------
    # supervision
    # ------------------------------------------------------------------
    def _observe_workers(self) -> int:
        """Heartbeat: fold the pool's current worker pids into the death
        count; degrade when the respawn budget is exhausted.  Returns the
        total deaths observed so far."""
        pool = self._pool
        procs = getattr(pool, "_pool", None) if pool is not None else None
        if procs:
            pids = {p.pid for p in procs if getattr(p, "pid", None)}
            self._seen_pids |= pids
            deaths = max(0, len(self._seen_pids) - self.workers)
            if deaths > self.stats["worker_deaths"]:
                self.stats["worker_deaths"] = deaths
                if deaths > self.respawn_budget and self.degraded is None:
                    self._degrade(
                        f"respawn budget ({self.respawn_budget}) exhausted "
                        f"after {deaths} worker death(s)"
                    )
        return self.stats["worker_deaths"]

    def _degrade(self, reason: str) -> None:
        """Stop trusting the pool: terminate it, drain inline from now on."""
        if self.degraded is not None:
            return
        # chaos-delayed values were really computed; release them first
        for key, (value, _) in list(self._delayed.items()):
            self._done[key] = value
        self._delayed.clear()
        pending = len(self._backlog) + len(self._inflight)
        self.degraded = DegradedExecution(
            reason=reason,
            worker_deaths=self.stats["worker_deaths"],
            pending_units=pending,
        )
        # in-flight futures die with the pool; payloads are retained, so
        # result() recomputes each of these units inline
        self._inflight.clear()
        pool = self._pool
        self._pool = None
        if pool is not None:
            try:
                pool.terminate()
                pool.join()
            except Exception:
                pass
        record_degradation(self.degraded)

    def _recover(self, key, cause: str):
        """Re-execute one lost/failed unit inline from its payload."""
        kind, args = self._payload.pop(key)
        self.stats["recovered"] += 1
        reporter = current_reporter()
        if reporter is not None:
            reporter.note(recovered_unit=self.stats["recovered"], cause=cause)
        return _run_local(self._cp, kind, args)

    def _await(self, key, fut):
        """Block on one pool future under supervision.

        Polls in ``poll_s`` slices; between polls the heartbeat runs.  A
        newly observed worker death, an expired task deadline, a raising
        task, or a degradation all declare the unit lost (the
        :data:`_LOST` sentinel) — the caller recovers it inline.
        """
        started = self._clock()
        while True:
            try:
                return fut.get(self.poll_s)
            except multiprocessing.TimeoutError:
                before = self.stats["worker_deaths"]
                self._observe_workers()
                if self.degraded is not None:
                    return _LOST
                if self.stats["worker_deaths"] > before:
                    # someone died while we waited; assume it held this
                    # unit (recomputing a unit that later also arrives is
                    # harmless: the late result is dropped, the budget's
                    # per-unit dedup charges once)
                    return _LOST
                if (
                    self.task_deadline_s is not None
                    and self._clock() - started > self.task_deadline_s
                ):
                    return _LOST
            except Exception:
                return _LOST

    # ------------------------------------------------------------------
    # the task plumbing
    # ------------------------------------------------------------------
    def submit(self, key, kind: str, args) -> None:
        self._payload[key] = (kind, args)
        self._backlog.append(key)
        self._pump()

    def _collect(self, key, value) -> None:
        """Deliver one arrived result, through the chaos result seam."""
        state = chaos.active()
        delay, dup = state.result_fault() if state is not None else (0, False)
        self._payload.pop(key, None)
        self.stats["pool_results"] += 1
        if delay:
            self._delayed[key] = [value, delay]
            return
        self._done[key] = value
        if dup:
            self._stale[key] = value

    def _pump(self) -> None:
        if self._closed:
            return
        # age chaos-delayed results toward visibility
        if self._delayed:
            ripe = [k for k, slot in self._delayed.items() if slot[1] <= 1]
            for k in ripe:
                self._done[k] = self._delayed.pop(k)[0]
            for slot in self._delayed.values():
                slot[1] -= 1
        # chaos-duplicated results arrive a second time: collapse the
        # copy when the first is still queued, drop it when already
        # consumed — either way nothing downstream sees it twice
        if self._stale:
            for k in list(self._stale):
                value = self._stale.pop(k)
                if k in self._done:
                    self._done[k] = value
                self.stats["duplicates"] += 1
        inflight = self._inflight
        if inflight:
            finished = [k for k, fut in inflight.items() if fut.ready()]
            for k in finished:
                fut = inflight.pop(k)
                try:
                    value = fut.get()
                except Exception:
                    value = self._recover(k, "task error")
                    self._done[k] = value
                    continue
                self._collect(k, value)
            self._observe_workers()
        if self.degraded is not None or self._pool is None:
            return
        backlog = self._backlog
        while backlog and len(inflight) < self._high_water:
            key = backlog.popleft()
            kind, args = self._payload[key]
            try:
                fut = self._pool.apply_async(_TASK_FNS[kind], args)
            except Exception:
                backlog.appendleft(key)
                self._degrade("pool stopped accepting work")
                return
            inflight[key] = fut
            self.stats["tasks"] += 1

    def result(self, key):
        if key in self._done:
            out = self._done.pop(key)
            self._pump()
            return out
        if key in self._delayed:
            # the coordinator is blocked on this unit: deliver the
            # chaos-delayed value now rather than stalling the merge
            out = self._delayed.pop(key)[0]
            self._pump()
            return out
        fut = self._inflight.pop(key, None)
        if fut is not None:
            out = self._await(key, fut)
            if out is _LOST:
                out = self._recover(key, "worker lost")
            else:
                self._payload.pop(key, None)
                self.stats["pool_results"] += 1
            self._pump()
            return out
        # not yet handed to the pool (or the pool degraded away): steal
        # the unit back and run it inline
        try:
            self._backlog.remove(key)
        except ValueError:
            pass
        kind, args = self._payload.pop(key)
        self.stats["stolen"] += 1
        out = _run_local(self._cp, kind, args)
        self._pump()
        return out

    def close(self) -> None:
        # speculative tasks may still be queued; drop them, don't drain.
        # Idempotent, and safe on every exception path (context manager).
        if self._closed:
            return
        self._closed = True
        pool = self._pool
        self._pool = None
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class SerialExecutor:
    """In-process executor with the same interface (tests, fallbacks).

    Evaluates every task lazily at :meth:`result` time in the coordinator
    — behaviourally the "everything got stolen back" schedule — so the
    differential suite can drive the parallel merge loops over hundreds
    of random problems without paying process spawns.
    """

    def __init__(self, problem: QuotientProblem, workers: int = 1) -> None:
        from .kernel import compiled_problem

        self._cp = compiled_problem(problem)
        self.workers = workers
        self._payload: dict = {}
        self.stats = {"tasks": 0, "stolen": 0, "pool_results": 0}
        self.degraded: DegradedExecution | None = None

    def submit(self, key, kind: str, args) -> None:
        self._payload[key] = (kind, args)

    def result(self, key):
        kind, args = self._payload.pop(key)
        self.stats["stolen"] += 1
        return _run_local(self._cp, kind, args)

    def close(self) -> None:
        self._payload.clear()

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


_EXECUTOR_FACTORY: Callable | None = None


@contextmanager
def _use_executor_factory(factory: Callable | None) -> Iterator[None]:
    """Swap the executor construction point (differential tests)."""
    global _EXECUTOR_FACTORY
    previous = _EXECUTOR_FACTORY
    _EXECUTOR_FACTORY = factory
    try:
        yield
    finally:
        _EXECUTOR_FACTORY = previous


def _make_executor(problem: QuotientProblem, workers: int):
    """The single creation point for phase executors (patched by tests)."""
    if _EXECUTOR_FACTORY is not None:
        return _EXECUTOR_FACTORY(problem, workers)
    return ShardExecutor(problem, workers)


def _emit_executor_stats(executor) -> None:
    """Aggregate one phase executor's scheduling counters into obs.

    These are the only parallel outputs that may differ run to run (they
    reflect worker timing); every result-bearing output stays canonical.
    """
    obs.gauge("kernel.parallel.workers", executor.workers)
    obs.add("kernel.parallel.tasks", executor.stats["tasks"])
    obs.add("kernel.parallel.stolen", executor.stats["stolen"])
    obs.add("kernel.parallel.pool_results", executor.stats["pool_results"])
    # supervision counters: emitted only when supervision actually fired,
    # so healthy runs keep their historical metric set byte-for-byte
    stats = executor.stats
    if stats.get("recovered"):
        obs.add("kernel.parallel.recovered_units", stats["recovered"])
    if stats.get("worker_deaths"):
        obs.add("kernel.parallel.worker_deaths", stats["worker_deaths"])
    if stats.get("duplicates"):
        obs.add("kernel.parallel.duplicate_results", stats["duplicates"])


# ----------------------------------------------------------------------
# safety phase (Fig. 5): speculative fan-out, sequential-order merge
# ----------------------------------------------------------------------
def safety_explore_parallel(
    problem: QuotientProblem,
    meter=None,
    resume: dict | None = None,
    workers: int = 2,
) -> tuple[PairSet | None, set[PairSet], list[tuple[PairSet, str, PairSet]], int, int]:
    """The Fig. 5 exploration with pooled extensions; sequential semantics.

    Mirrors :func:`repro.quotient.kernel.safety_explore_kernel` unit for
    unit: the worklist, the charge sites, the snapshot closure, and the
    returned representation are identical — only the evaluation of
    ``φ``-extensions moves to the pool.  Charges go through
    :meth:`~repro.quotient.budget.BudgetMeter.charge_unit` keyed on
    ``(pair_codes, event_index)``, so a unit that is both stolen back and
    later delivered by the pool is still charged exactly once.
    """
    from .kernel import compiled_problem

    cp = compiled_problem(problem)
    int_events = cp.int_events
    n_events = len(int_events)
    with _make_executor(problem, workers) as executor:
        try:
            if resume is None:
                start_codes = cp.ext_closure(
                    [cp.ca.initial * cp.n_component + cp.cb.initial]
                )
                if start_codes is None:
                    if meter is not None:
                        meter.charge_unit("init", pairs=1)
                    return None, set(), [], 1, 1
                start = cp.decode_pairs(start_codes)
                explored = 1
                rejected = 0
                decoded: dict[frozenset[int], PairSet] = {start_codes: start}
                states: set[PairSet] = {start}
                transitions: list[tuple[PairSet, str, PairSet]] = []
                seen: set[frozenset[int]] = {start_codes}
                worklist: deque[frozenset[int]] = deque([start_codes])
                current: frozenset[int] | None = None
                next_event = 0
                executor.submit(start_codes, "safety", (start_codes,))
            else:
                def encode(label: PairSet) -> frozenset[int]:
                    return frozenset(cp.encode_pair(pair) for pair in label)

                start = resume["start"]
                explored = resume["explored"]
                rejected = resume["rejected"]
                states = set(resume["states"])
                transitions = list(resume["transitions"])
                decoded = {}
                seen = set()
                for label in states:
                    codes = encode(label)
                    decoded[codes] = label
                    seen.add(codes)
                worklist = deque(encode(label) for label in resume["worklist"])
                resumed_current = resume["current"]
                current = None if resumed_current is None else encode(resumed_current)
                next_event = resume["next_event"]
                if current is not None:
                    executor.submit(current, "safety", (current,))
                for codes in worklist:
                    executor.submit(codes, "safety", (codes,))

            def snap() -> dict:
                return {
                    "start": start,
                    "current": None if current is None else decoded[current],
                    "next_event": next_event,
                    "states": set(states),
                    "worklist": [decoded[codes] for codes in worklist],
                    "transitions": list(transitions),
                    "explored": explored,
                    "rejected": rejected,
                }

            if resume is None and meter is not None:
                meter.charge_unit("init", pairs=1, states=1, snapshot=snap)
            current_results: tuple | None = (
                executor.result(current) if current is not None else None
            )
            while True:
                if current is None or next_event >= n_events:
                    if not worklist:
                        break
                    current = worklist.popleft()
                    current_results = executor.result(current)
                    next_event = 0
                    continue
                int_idx = next_event
                candidate = current_results[int_idx]
                explored += 1
                next_event += 1
                added = 0
                if candidate is None:
                    rejected += 1
                else:
                    label = decoded.get(candidate)
                    if label is None:
                        label = cp.decode_pairs(candidate)
                        decoded[candidate] = label
                    if candidate not in seen:
                        seen.add(candidate)
                        states.add(label)
                        worklist.append(candidate)
                        added = 1
                        executor.submit(candidate, "safety", (candidate,))
                    transitions.append((decoded[current], int_events[int_idx], label))
                if meter is not None:
                    meter.charge_unit(
                        (current, int_idx),
                        pairs=1,
                        states=added,
                        frontier=len(worklist),
                        snapshot=snap,
                    )
            return start, states, transitions, explored, rejected
        finally:
            _emit_executor_stats(executor)


# ----------------------------------------------------------------------
# progress phase (Fig. 6): sharded τ* adjacency crawl
# ----------------------------------------------------------------------
def parallel_round_adjacency(
    executor,
    succ_c,
    alive,
    n_converter: int,
    needed: list[int],
    round_index: int,
) -> dict[int, tuple[int, ...]]:
    """One round's product adjacency, crawled in per-worker shards.

    Seeds are split round-robin into ``workers * 2`` chunks (deterministic
    for a given round, independent of scheduling); each shard returns the
    subgraph reachable from its seeds, and the union is exactly the
    adjacency the sequential crawl builds, because successor batches are
    pure functions of their node.
    """
    seeds = list(dict.fromkeys(needed))
    if not seeds:
        return {}
    n_chunks = max(1, min(len(seeds), executor.workers * 2))
    ctx = (succ_c, frozenset(alive), n_converter)
    for i in range(n_chunks):
        executor.submit(
            ("adj", round_index, i), "adjacency", (ctx, tuple(seeds[i::n_chunks]))
        )
    merged: dict[int, tuple[int, ...]] = {}
    for i in range(n_chunks):
        merged.update(executor.result(("adj", round_index, i)))
    return merged
