"""Sharded parallel state-space exploration with a deterministic merge.

The quotient's two explorations — the Fig. 5 safety frontier and the
per-round ``τ*`` crawl of the Fig. 6 progress phase — bottom out in pure
functions of individual work units: every Int-event extension of a pair
set, and every product node's successor batch, depends only on its inputs.
This module farms those units out to a :mod:`multiprocessing` pool while
the coordinating process replays the **exact sequential merge order**, so
every observable output — converter, counterexamples, deterministic work
counters, budget trip points, checkpoints — is byte-identical to the
single-threaded kernel at any worker count.

Design:

* **Speculative fan-out, canonical merge.**  The safety loop submits each
  *discovered* pair-set state to the pool immediately (one task computes
  all of its Int-event extensions), but consumes results in FIFO worklist
  order — the sequential order.  The coordinator is the only process that
  touches the meter, the worklist, and the snapshot closure, so charges,
  trips, and checkpoints land on the same unit of work as the sequential
  loop.
* **Work-stealing.**  Tasks sit in a coordinator-side backlog and are fed
  to the pool a bounded window at a time; idle workers drain the shared
  queue (stealing from each other), and when the coordinator needs a
  result whose task has not yet been handed over, it steals the unit back
  and computes it inline rather than stalling.  Stolen units are charged
  through :meth:`~repro.quotient.budget.BudgetMeter.charge_unit`, whose
  per-unit dedup makes double submission harmless.
* **Sharded τ*.**  A progress round's seed nodes are split round-robin
  into per-worker chunks; each shard crawls its reachable subgraph, and
  because successor batches are pure, the union of the shard adjacencies
  *is* the sequential adjacency.  Tarjan condensation and the bad-state
  check stay in the coordinator.

Workers are spawned once per phase with the pickled
:class:`~repro.quotient.types.QuotientProblem` and compile it in their
initializer; tasks then ship only pair codes.  Scheduling statistics are
aggregated into ``obs`` as ``kernel.parallel.*`` — those counters reflect
timing (how much was stolen vs pooled) and are the only outputs allowed
to vary across runs.

Worker counts come from ``--workers N`` / ``REPRO_WORKERS`` through
:func:`use_workers`; ``workers <= 1`` never touches this module (the
phase kernels bypass the pool entirely — see ``tests/test_parallel_kernel.py``).
"""

from __future__ import annotations

import multiprocessing
import os
from collections import deque
from contextlib import contextmanager
from typing import Callable, Iterator

from .. import obs
from .types import PairSet, QuotientProblem

__all__ = [
    "ShardExecutor",
    "SerialExecutor",
    "default_workers",
    "effective_workers",
    "use_workers",
    "safety_explore_parallel",
    "parallel_round_adjacency",
]

#: How many tasks beyond the worker count are kept in flight per worker.
#: Larger windows hide result latency; smaller ones keep more of the
#: backlog stealable by the coordinator.
PIPELINE_DEPTH = 8


# ----------------------------------------------------------------------
# worker-count configuration (CLI --workers / REPRO_WORKERS / context)
# ----------------------------------------------------------------------
_ACTIVE: int | None = None


def default_workers() -> int:
    """The ambient worker count: ``REPRO_WORKERS`` or 1 (sequential)."""
    raw = os.environ.get("REPRO_WORKERS")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return 1
        if value >= 1:
            return value
    return 1


def effective_workers() -> int:
    """The worker count the phase kernels should dispatch on."""
    return _ACTIVE if _ACTIVE is not None else default_workers()


@contextmanager
def use_workers(workers: int | None) -> Iterator[None]:
    """Scope an explicit worker count (``None`` defers to the ambient one)."""
    global _ACTIVE
    if workers is not None and workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers!r}")
    previous = _ACTIVE
    _ACTIVE = workers
    try:
        yield
    finally:
        _ACTIVE = previous


# ----------------------------------------------------------------------
# worker-process side: one compiled problem per process, pure task fns
# ----------------------------------------------------------------------
_WORKER_CP = None


def _init_worker(problem: QuotientProblem) -> None:
    """Pool initializer: compile the problem once in this worker."""
    global _WORKER_CP
    from .kernel import CompiledProblem

    _WORKER_CP = CompiledProblem(problem)


def _safety_state_task(codes: frozenset[int]):
    """All Int-event extensions of one safety pair-set state."""
    cp = _WORKER_CP
    return tuple(cp.extend(codes, k) for k in range(len(cp.int_events)))


def _progress_chunk_task(ctx, seeds):
    """The internal product subgraph reachable from one seed shard."""
    from .kernel import _adjacency_from

    succ_c, alive, m = ctx
    return _adjacency_from(_WORKER_CP, succ_c, alive, m, seeds)


def _run_local(cp, kind: str, args):
    """Coordinator-side (steal-back) evaluation of one task."""
    if kind == "safety":
        (codes,) = args
        return tuple(cp.extend(codes, k) for k in range(len(cp.int_events)))
    if kind == "adjacency":
        from .kernel import _adjacency_from

        ctx, seeds = args
        succ_c, alive, m = ctx
        return _adjacency_from(cp, succ_c, alive, m, seeds)
    raise ValueError(f"unknown task kind {kind!r}")


_TASK_FNS: dict[str, Callable] = {
    "safety": _safety_state_task,
    "adjacency": _progress_chunk_task,
}


# ----------------------------------------------------------------------
# executors
# ----------------------------------------------------------------------
class ShardExecutor:
    """Work-stealing task executor over a multiprocessing pool.

    Tasks enter a coordinator-side backlog; :meth:`_pump` keeps a bounded
    window of them in the pool's shared queue (idle workers steal from
    that queue), and :meth:`result` either consumes a pool result or
    steals a still-backlogged unit back for inline evaluation.  The
    executor never reorders anything the caller observes: results are
    handed back for exactly the key requested.
    """

    def __init__(
        self,
        problem: QuotientProblem,
        workers: int,
        *,
        start_method: str | None = None,
    ) -> None:
        from .kernel import compiled_problem

        self._cp = compiled_problem(problem)
        self.workers = workers
        self._backlog: deque = deque()
        self._payload: dict = {}
        self._inflight: dict = {}
        self._done: dict = {}
        self._high_water = workers * PIPELINE_DEPTH
        self.stats = {"tasks": 0, "stolen": 0, "pool_results": 0}
        method = start_method or os.environ.get("REPRO_MP_START") or "fork"
        if method not in multiprocessing.get_all_start_methods():
            method = multiprocessing.get_start_method()
        ctx = multiprocessing.get_context(method)
        self._pool = ctx.Pool(
            workers, initializer=_init_worker, initargs=(problem,)
        )

    def submit(self, key, kind: str, args) -> None:
        self._payload[key] = (kind, args)
        self._backlog.append(key)
        self._pump()

    def _pump(self) -> None:
        inflight = self._inflight
        if inflight:
            finished = [k for k, fut in inflight.items() if fut.ready()]
            for k in finished:
                self._done[k] = inflight.pop(k).get()
                self._payload.pop(k, None)
                self.stats["pool_results"] += 1
        backlog = self._backlog
        while backlog and len(inflight) < self._high_water:
            key = backlog.popleft()
            kind, args = self._payload[key]
            inflight[key] = self._pool.apply_async(_TASK_FNS[kind], args)
            self.stats["tasks"] += 1

    def result(self, key):
        if key in self._done:
            out = self._done.pop(key)
            self._pump()
            return out
        fut = self._inflight.pop(key, None)
        if fut is not None:
            out = fut.get()
            self._payload.pop(key, None)
            self.stats["pool_results"] += 1
            self._pump()
            return out
        # not yet handed to the pool: steal the unit back and run inline
        self._backlog.remove(key)
        kind, args = self._payload.pop(key)
        self.stats["stolen"] += 1
        out = _run_local(self._cp, kind, args)
        self._pump()
        return out

    def close(self) -> None:
        # speculative tasks may still be queued; drop them, don't drain
        self._pool.terminate()
        self._pool.join()


class SerialExecutor:
    """In-process executor with the same interface (tests, fallbacks).

    Evaluates every task lazily at :meth:`result` time in the coordinator
    — behaviourally the "everything got stolen back" schedule — so the
    differential suite can drive the parallel merge loops over hundreds
    of random problems without paying process spawns.
    """

    def __init__(self, problem: QuotientProblem, workers: int = 1) -> None:
        from .kernel import compiled_problem

        self._cp = compiled_problem(problem)
        self.workers = workers
        self._payload: dict = {}
        self.stats = {"tasks": 0, "stolen": 0, "pool_results": 0}

    def submit(self, key, kind: str, args) -> None:
        self._payload[key] = (kind, args)

    def result(self, key):
        kind, args = self._payload.pop(key)
        self.stats["stolen"] += 1
        return _run_local(self._cp, kind, args)

    def close(self) -> None:
        self._payload.clear()


_EXECUTOR_FACTORY: Callable | None = None


@contextmanager
def _use_executor_factory(factory: Callable | None) -> Iterator[None]:
    """Swap the executor construction point (differential tests)."""
    global _EXECUTOR_FACTORY
    previous = _EXECUTOR_FACTORY
    _EXECUTOR_FACTORY = factory
    try:
        yield
    finally:
        _EXECUTOR_FACTORY = previous


def _make_executor(problem: QuotientProblem, workers: int):
    """The single creation point for phase executors (patched by tests)."""
    if _EXECUTOR_FACTORY is not None:
        return _EXECUTOR_FACTORY(problem, workers)
    return ShardExecutor(problem, workers)


def _emit_executor_stats(executor) -> None:
    """Aggregate one phase executor's scheduling counters into obs.

    These are the only parallel outputs that may differ run to run (they
    reflect worker timing); every result-bearing output stays canonical.
    """
    obs.gauge("kernel.parallel.workers", executor.workers)
    obs.add("kernel.parallel.tasks", executor.stats["tasks"])
    obs.add("kernel.parallel.stolen", executor.stats["stolen"])
    obs.add("kernel.parallel.pool_results", executor.stats["pool_results"])


# ----------------------------------------------------------------------
# safety phase (Fig. 5): speculative fan-out, sequential-order merge
# ----------------------------------------------------------------------
def safety_explore_parallel(
    problem: QuotientProblem,
    meter=None,
    resume: dict | None = None,
    workers: int = 2,
) -> tuple[PairSet | None, set[PairSet], list[tuple[PairSet, str, PairSet]], int, int]:
    """The Fig. 5 exploration with pooled extensions; sequential semantics.

    Mirrors :func:`repro.quotient.kernel.safety_explore_kernel` unit for
    unit: the worklist, the charge sites, the snapshot closure, and the
    returned representation are identical — only the evaluation of
    ``φ``-extensions moves to the pool.  Charges go through
    :meth:`~repro.quotient.budget.BudgetMeter.charge_unit` keyed on
    ``(pair_codes, event_index)``, so a unit that is both stolen back and
    later delivered by the pool is still charged exactly once.
    """
    from .kernel import compiled_problem

    cp = compiled_problem(problem)
    int_events = cp.int_events
    n_events = len(int_events)
    executor = _make_executor(problem, workers)
    try:
        if resume is None:
            start_codes = cp.ext_closure(
                [cp.ca.initial * cp.n_component + cp.cb.initial]
            )
            if start_codes is None:
                if meter is not None:
                    meter.charge_unit("init", pairs=1)
                return None, set(), [], 1, 1
            start = cp.decode_pairs(start_codes)
            explored = 1
            rejected = 0
            decoded: dict[frozenset[int], PairSet] = {start_codes: start}
            states: set[PairSet] = {start}
            transitions: list[tuple[PairSet, str, PairSet]] = []
            seen: set[frozenset[int]] = {start_codes}
            worklist: deque[frozenset[int]] = deque([start_codes])
            current: frozenset[int] | None = None
            next_event = 0
            executor.submit(start_codes, "safety", (start_codes,))
        else:
            def encode(label: PairSet) -> frozenset[int]:
                return frozenset(cp.encode_pair(pair) for pair in label)

            start = resume["start"]
            explored = resume["explored"]
            rejected = resume["rejected"]
            states = set(resume["states"])
            transitions = list(resume["transitions"])
            decoded = {}
            seen = set()
            for label in states:
                codes = encode(label)
                decoded[codes] = label
                seen.add(codes)
            worklist = deque(encode(label) for label in resume["worklist"])
            resumed_current = resume["current"]
            current = None if resumed_current is None else encode(resumed_current)
            next_event = resume["next_event"]
            if current is not None:
                executor.submit(current, "safety", (current,))
            for codes in worklist:
                executor.submit(codes, "safety", (codes,))

        def snap() -> dict:
            return {
                "start": start,
                "current": None if current is None else decoded[current],
                "next_event": next_event,
                "states": set(states),
                "worklist": [decoded[codes] for codes in worklist],
                "transitions": list(transitions),
                "explored": explored,
                "rejected": rejected,
            }

        if resume is None and meter is not None:
            meter.charge_unit("init", pairs=1, states=1, snapshot=snap)
        current_results: tuple | None = (
            executor.result(current) if current is not None else None
        )
        while True:
            if current is None or next_event >= n_events:
                if not worklist:
                    break
                current = worklist.popleft()
                current_results = executor.result(current)
                next_event = 0
                continue
            int_idx = next_event
            candidate = current_results[int_idx]
            explored += 1
            next_event += 1
            added = 0
            if candidate is None:
                rejected += 1
            else:
                label = decoded.get(candidate)
                if label is None:
                    label = cp.decode_pairs(candidate)
                    decoded[candidate] = label
                if candidate not in seen:
                    seen.add(candidate)
                    states.add(label)
                    worklist.append(candidate)
                    added = 1
                    executor.submit(candidate, "safety", (candidate,))
                transitions.append((decoded[current], int_events[int_idx], label))
            if meter is not None:
                meter.charge_unit(
                    (current, int_idx),
                    pairs=1,
                    states=added,
                    frontier=len(worklist),
                    snapshot=snap,
                )
        return start, states, transitions, explored, rejected
    finally:
        executor.close()
        _emit_executor_stats(executor)


# ----------------------------------------------------------------------
# progress phase (Fig. 6): sharded τ* adjacency crawl
# ----------------------------------------------------------------------
def parallel_round_adjacency(
    executor,
    succ_c,
    alive,
    n_converter: int,
    needed: list[int],
    round_index: int,
) -> dict[int, tuple[int, ...]]:
    """One round's product adjacency, crawled in per-worker shards.

    Seeds are split round-robin into ``workers * 2`` chunks (deterministic
    for a given round, independent of scheduling); each shard returns the
    subgraph reachable from its seeds, and the union is exactly the
    adjacency the sequential crawl builds, because successor batches are
    pure functions of their node.
    """
    seeds = list(dict.fromkeys(needed))
    if not seeds:
        return {}
    n_chunks = max(1, min(len(seeds), executor.workers * 2))
    ctx = (succ_c, frozenset(alive), n_converter)
    for i in range(n_chunks):
        executor.submit(
            ("adj", round_index, i), "adjacency", (ctx, tuple(seeds[i::n_chunks]))
        )
    merged: dict[int, tuple[int, ...]] = {}
    for i in range(n_chunks):
        merged.update(executor.result(("adj", round_index, i)))
    return merged
