"""Integer-indexed kernel for the quotient phases (Fig. 5 / Fig. 6).

The safety and progress phases both walk graphs whose nodes are built from
``(a, b)`` pairs of service and component states.  The reference
implementations (:mod:`repro.quotient.safety_phase`,
:mod:`repro.quotient.progress_phase`) operate directly on labeled states
and pay for ``repr()``-based sorting and tuple hashing on every step.

This module runs the same explorations over the compiled forms of the two
input machines (:mod:`repro.spec.compiled`): a pair ``(a, b)`` becomes the
int code ``a_id * |S_B| + b_id``, the ``ψ``-advance of the service hub is a
table lookup, and the ``ok`` check of the Ext-closure is a row of ints.
Results decode back to the reference pair-set representation at the
boundary, so the constructed ``C0``/converter specifications — and every
phase counter — are identical to the reference path's.

Compiled problems are memoized in a small bounded cache keyed on the
:class:`~repro.quotient.types.QuotientProblem` (a frozen, hashable value
object), so the safety and progress phases of one solve share a single
compilation.
"""

from __future__ import annotations

import os
from collections import OrderedDict, deque
from typing import Iterator

from .. import obs
from ..spec.compiled import CompiledSpec, compiled
from ..spec.spec import Specification
from .types import Pair, PairSet, QuotientProblem

__all__ = [
    "CompiledProblem",
    "compiled_problem",
    "problem_cache_clear",
    "problem_cache_maxsize",
    "safety_explore_kernel",
    "progress_phase_kernel",
]

#: Default bound on the compiled-problem cache (each entry also pins the
#: compiled service and component in the spec-level cache).  Override with
#: ``REPRO_KERNEL_CACHE`` (see :func:`problem_cache_maxsize`).
PROBLEM_CACHE_MAXSIZE = 64

#: Largest pair space (``|S_A| × |S_B|``) for which the Ext-closure keeps a
#: preallocated byte-per-pair visited scratch; beyond it (64 MiB) the
#: closure falls back to a hash set, trading speed for bounded memory.
SCRATCH_LIMIT = 1 << 26

#: Distinguishes "no cached successor batch" from a cached ``None`` (¬ok).
_MISS = object()


class CompiledProblem:
    """A quotient problem over interned ids.

    Pairs ``(a, b)`` are coded as ``a_id * n_component + b_id``, where ids
    come from the compiled service (``ca``) and component (``cb``).
    """

    __slots__ = (
        "problem",
        "ca",
        "cb",
        "n_component",
        "n_pairs",
        "psi",
        "psi_flat",
        "n_svc_events",
        "lam_off",
        "lam_tg",
        "menus",
        "int_events",
        "ext_moves_b",
        "int_moves_b",
        "int_moves_map_b",
        "ext_mask_b",
        "_succ_codes",
        "_int_seeds",
        "_visited",
    )

    def __init__(self, problem: QuotientProblem) -> None:
        self.problem = problem
        ca: CompiledSpec = compiled(problem.service)
        cb: CompiledSpec = compiled(problem.component)
        self.ca = ca
        self.cb = cb
        self.n_component = cb.n_states
        self.n_pairs = ca.n_states * cb.n_states
        self.psi = ca.psi_table()
        self.psi_flat = ca.psi_flat()
        self.n_svc_events = ca.n_events
        self.lam_off, self.lam_tg = cb.int_succ_csr()
        self.menus = ca.acceptance_menus()

        ext = problem.interface.ext_events
        self.int_events = sorted(problem.interface.int_events)
        int_index = {e: k for k, e in enumerate(self.int_events)}

        # Component moves, partitioned by the interface: Ext moves carry the
        # *service* event id (they drive the ψ table); Int moves carry the
        # index into the sorted Int-event list (they drive φ and the
        # converter's transitions).
        ext_moves_b: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
        int_moves_b: list[tuple[tuple[int, tuple[int, ...]], ...]] = []
        ext_mask_b: list[int] = []
        for b in range(cb.n_states):
            ext_here: list[tuple[int, tuple[int, ...]]] = []
            int_here: list[tuple[int, tuple[int, ...]]] = []
            mask = 0
            for eid, targets in cb.ext_moves[b]:
                event = cb.events[eid]
                if event in ext:
                    svc_eid = ca.event_index[event]
                    ext_here.append((svc_eid, targets))
                    mask |= 1 << svc_eid
                else:
                    int_here.append((int_index[event], targets))
            ext_moves_b.append(tuple(ext_here))
            int_moves_b.append(tuple(int_here))
            ext_mask_b.append(mask)
        self.ext_moves_b = tuple(ext_moves_b)
        self.int_moves_b = tuple(int_moves_b)
        self.int_moves_map_b = tuple(dict(moves) for moves in int_moves_b)
        self.ext_mask_b = tuple(ext_mask_b)

        # Ext-closure scratch: a memoized successor batch per pair code
        # (``None`` marks a ¬ok pair) and a byte-per-pair visited buffer
        # reset after each closure, so the saturation loop allocates no
        # per-call sets.  Pair spaces past SCRATCH_LIMIT keep the buffer
        # unallocated and fall back to a hash set.
        self._succ_codes: dict[int, tuple[int, ...] | None] = {}
        self._int_seeds: dict[int, tuple[tuple[int, ...], ...]] = {}
        self._visited = (
            bytearray(self.n_pairs) if self.n_pairs <= SCRATCH_LIMIT else None
        )

    # ------------------------------------------------------------------
    # pair-code helpers
    # ------------------------------------------------------------------
    def decode_pairs(self, codes: frozenset[int]) -> PairSet:
        """A frozenset of pair codes as the reference ``PairSet``."""
        nb = self.n_component
        a_states = self.ca.states
        b_states = self.cb.states
        return frozenset(
            (a_states[code // nb], b_states[code % nb]) for code in codes
        )

    def encode_pair(self, pair: Pair) -> int:
        a, b = pair
        return self.ca.index[a] * self.n_component + self.cb.index[b]

    def fingerprint(self) -> str:
        """The problem's checkpoint fingerprint (see :mod:`repro.persist`).

        Delegates to :func:`repro.persist.problem_fingerprint` on the
        source problem, so the compiled and labeled representations agree
        on what identity a checkpoint is bound to.
        """
        from ..persist.checkpoint import problem_fingerprint

        return problem_fingerprint(self.problem)

    # ------------------------------------------------------------------
    # the Ext-closure (h / φ saturation with the ok check)
    # ------------------------------------------------------------------
    def _succ_for(self, code: int) -> tuple[int, ...] | None:
        """The one-step successor codes of *code*, memoized (``None`` = ¬ok).

        A pair's λ- and ψ-mirrored expansions depend only on the pair, and
        the same codes recur across thousands of closure calls, so the
        batch is computed once per code: the flat CSR λ buffer and the
        flat ``ψ`` row replace the nested-tuple walk of the original loop.
        """
        nb = self.n_component
        a, b = divmod(code, nb)
        base = code - b
        lam_off = self.lam_off
        out = [base + b2 for b2 in self.lam_tg[lam_off[b]:lam_off[b + 1]]]
        row_base = a * self.n_svc_events
        psi_flat = self.psi_flat
        result: tuple[int, ...] | None = None
        for svc_eid, targets in self.ext_moves_b[b]:
            a2 = psi_flat[row_base + svc_eid]
            if a2 < 0:
                # τ.b ∩ Ext ⊄ τ*.a — ok fails for any set containing (a, b)
                break
            base2 = a2 * nb
            out.extend(base2 + b2 for b2 in targets)
        else:
            result = tuple(out)
        self._succ_codes[code] = result
        return result

    def ext_closure(self, seed) -> frozenset[int] | None:
        """Saturate *seed* under B's λ steps and service-mirrored Ext events.

        Returns ``None`` when some reached pair ``(a, b)`` has ``B`` enabling
        an Ext event the service hub cannot perform (``¬ok``), mirroring
        :func:`repro.quotient.hmap.ext_closure`.
        """
        succ_codes = self._succ_codes
        visited = self._visited
        touched: list[int] = []
        stack: list[int] = []
        if visited is not None:
            for code in seed:
                if not visited[code]:
                    visited[code] = 1
                    touched.append(code)
                    stack.append(code)
            ok = True
            while stack:
                code = stack.pop()
                succs = succ_codes.get(code, _MISS)
                if succs is _MISS:
                    succs = self._succ_for(code)
                if succs is None:
                    ok = False
                    break
                for c2 in succs:
                    if not visited[c2]:
                        visited[c2] = 1
                        touched.append(c2)
                        stack.append(c2)
            for code in touched:
                visited[code] = 0
            return frozenset(touched) if ok else None
        # huge pair space: same loop over a hash set instead of the buffer
        closed: set[int] = set()
        for code in seed:
            if code not in closed:
                closed.add(code)
                stack.append(code)
        while stack:
            code = stack.pop()
            succs = succ_codes.get(code, _MISS)
            if succs is _MISS:
                succs = self._succ_for(code)
            if succs is None:
                return None
            for c2 in succs:
                if c2 not in closed:
                    closed.add(c2)
                    stack.append(c2)
        return frozenset(closed)

    def extend(self, codes: frozenset[int], int_idx: int) -> frozenset[int] | None:
        """``φ(J, e)`` over pair codes for the Int event at *int_idx*."""
        int_seeds = self._int_seeds
        seed: list[int] = []
        for code in codes:
            segments = int_seeds.get(code)
            if segments is None:
                segments = self._int_seeds_for(code)
            targets = segments[int_idx]
            if targets:
                seed.extend(targets)
        return self.ext_closure(seed)

    def _int_seeds_for(self, code: int) -> tuple[tuple[int, ...], ...]:
        """Per Int event, the φ seed codes contributed by *code* (memoized).

        ``extend`` runs once per (pair set, event) and iterates the whole
        set each time; batching a code's shifted targets for **all** Int
        events in one cached row turns that inner loop into a dict hit
        and a tuple index.
        """
        b = code % self.n_component
        base = code - b
        row = self.int_moves_map_b[b]
        segments = tuple(
            tuple(base + b2 for b2 in row[k]) if k in row else ()
            for k in range(len(self.int_events))
        )
        self._int_seeds[code] = segments
        return segments


# ----------------------------------------------------------------------
# the bounded problem cache
# ----------------------------------------------------------------------
_PROBLEM_CACHE: OrderedDict[QuotientProblem, CompiledProblem] = OrderedDict()


def problem_cache_maxsize() -> int:
    """The problem-cache bound: ``REPRO_KERNEL_CACHE`` or the default.

    Read per call so long-lived hosts can tune the bound without a
    restart; anything unparsable or below 1 falls back to
    :data:`PROBLEM_CACHE_MAXSIZE`.
    """
    raw = os.environ.get("REPRO_KERNEL_CACHE")
    if raw:
        try:
            value = int(raw)
        except ValueError:
            return PROBLEM_CACHE_MAXSIZE
        if value >= 1:
            return value
    return PROBLEM_CACHE_MAXSIZE


def compiled_problem(problem: QuotientProblem) -> CompiledProblem:
    """The compiled form of *problem*, from a bounded LRU cache."""
    entry = _PROBLEM_CACHE.get(problem)
    if entry is not None:
        _PROBLEM_CACHE.move_to_end(problem)
        obs.add("kernel.problem_cache_hits", 1)
        return entry
    obs.add("kernel.problem_cache_misses", 1)
    entry = CompiledProblem(problem)
    _PROBLEM_CACHE[problem] = entry
    maxsize = problem_cache_maxsize()
    while len(_PROBLEM_CACHE) > maxsize:
        _PROBLEM_CACHE.popitem(last=False)
        obs.add("kernel.problem_cache_evictions", 1)
    return entry


def problem_cache_clear() -> None:
    """Drop every cached compiled problem (testing aid)."""
    _PROBLEM_CACHE.clear()


# ----------------------------------------------------------------------
# safety phase (Fig. 5) over pair codes
# ----------------------------------------------------------------------
def safety_explore_kernel(
    problem: QuotientProblem,
    meter=None,
    resume: dict | None = None,
) -> tuple[PairSet | None, set[PairSet], list[tuple[PairSet, str, PairSet]], int, int]:
    """The Fig. 5 exploration, returning the reference representation.

    Returns ``(start, states, transitions, explored, rejected)`` — exactly
    what the labeled loop in :mod:`repro.quotient.safety_phase` computes
    (``start is None`` when ``¬ok.(h.ε)``).  *meter* is an optional
    :class:`~repro.quotient.budget.BudgetMeter`; the loop is flattened
    exactly like the reference one's, with charges after each work unit,
    so count limits and interrupts trip at identical points.  *resume* is
    a snapshot in the reference (pair-set) representation — checkpoints
    are path-independent — re-encoded here through the bijective
    ``encode_pair``.

    When the ambient worker count (``--workers`` / ``REPRO_WORKERS`` /
    :func:`repro.quotient.parallel.use_workers`) is above 1, the
    extension work is farmed to a process pool with a byte-identical
    merge; at 1 the pool machinery is bypassed entirely.
    """
    from .parallel import effective_workers, safety_explore_parallel

    workers = effective_workers()
    if workers > 1:
        return safety_explore_parallel(
            problem, meter, resume=resume, workers=workers
        )
    cp = compiled_problem(problem)
    int_events = cp.int_events
    n_events = len(int_events)
    if resume is None:
        start_codes = cp.ext_closure(
            {cp.ca.initial * cp.n_component + cp.cb.initial}
        )
        if start_codes is None:
            if meter is not None:
                meter.charge(pairs=1)
            return None, set(), [], 1, 1
        start = cp.decode_pairs(start_codes)
        explored = 1
        rejected = 0
        decoded: dict[frozenset[int], PairSet] = {start_codes: start}
        states: set[PairSet] = {start}
        transitions: list[tuple[PairSet, str, PairSet]] = []
        seen: set[frozenset[int]] = {start_codes}
        worklist: deque[frozenset[int]] = deque([start_codes])
        current: frozenset[int] | None = None
        next_event = 0
    else:
        def encode(label: PairSet) -> frozenset[int]:
            return frozenset(cp.encode_pair(pair) for pair in label)

        start = resume["start"]
        explored = resume["explored"]
        rejected = resume["rejected"]
        states = set(resume["states"])
        transitions = list(resume["transitions"])
        decoded = {}
        seen = set()
        for label in states:
            codes = encode(label)
            decoded[codes] = label
            seen.add(codes)
        worklist = deque(encode(label) for label in resume["worklist"])
        resumed_current = resume["current"]
        current = None if resumed_current is None else encode(resumed_current)
        next_event = resume["next_event"]

    def snap() -> dict:
        return {
            "start": start,
            "current": None if current is None else decoded[current],
            "next_event": next_event,
            "states": set(states),
            "worklist": [decoded[codes] for codes in worklist],
            "transitions": list(transitions),
            "explored": explored,
            "rejected": rejected,
        }

    if resume is None and meter is not None:
        meter.charge(pairs=1, states=1, snapshot=snap)
    while True:
        if current is None or next_event >= n_events:
            if not worklist:
                break
            current = worklist.popleft()
            next_event = 0
            continue
        int_idx = next_event
        candidate = cp.extend(current, int_idx)
        explored += 1
        next_event += 1
        added = 0
        if candidate is None:
            rejected += 1
        else:
            label = decoded.get(candidate)
            if label is None:
                label = cp.decode_pairs(candidate)
                decoded[candidate] = label
            if candidate not in seen:
                seen.add(candidate)
                states.add(label)
                worklist.append(candidate)
                added = 1
            transitions.append((decoded[current], int_events[int_idx], label))
        if meter is not None:
            meter.charge(
                pairs=1, states=added, frontier=len(worklist), snapshot=snap
            )
    return start, states, transitions, explored, rejected


# ----------------------------------------------------------------------
# progress phase (Fig. 6) over interned converter states
# ----------------------------------------------------------------------
def _adjacency_from(
    cp: CompiledProblem,
    succ_c: tuple[dict[int, tuple[int, ...]], ...],
    alive,
    n_converter: int,
    seeds,
) -> dict[int, tuple[int, ...]]:
    """The internal product subgraph reachable from *seeds*.

    Node code is ``b_id * n_converter + ci``; each node's successor batch
    is a pure function of the node (given the round's ``succ_c``/``alive``
    context), so shards crawling from disjoint seed sets produce
    pointwise-identical entries and merge by plain dict union — the
    property the parallel progress phase relies on.
    """
    lam = cp.cb.int_succ
    int_moves_b = cp.int_moves_b
    m = n_converter

    def successors(node: int) -> tuple[int, ...]:
        b, ci = divmod(node, m)
        result: list[int] = []
        for b2 in lam[b]:
            result.append(b2 * m + ci)
        row = succ_c[ci]
        for int_idx, targets in int_moves_b[b]:
            cjs = row.get(int_idx)
            if not cjs:
                continue
            for cj in cjs:
                if cj in alive:
                    for b2 in targets:
                        result.append(b2 * m + cj)
        return tuple(result)

    adjacency: dict[int, tuple[int, ...]] = {}
    stack = list(seeds)
    while stack:
        node = stack.pop()
        if node in adjacency:
            continue
        succs = successors(node)
        adjacency[node] = succs
        for nxt in succs:
            if nxt not in adjacency:
                stack.append(nxt)
    return adjacency


def _tau_star_from_adjacency(
    cp: CompiledProblem,
    adjacency: dict[int, tuple[int, ...]],
    n_converter: int,
) -> dict[int, int]:
    """``τ*.⟨b, c⟩`` event masks for every node of a closed *adjacency*.

    Mirrors ``_composite_tau_star_impl``: Tarjan condensation of the
    internal subgraph, then Ext-event propagation children-first.  The
    result (and the emitted node/SCC counters) depends only on the graph,
    not on the dict's insertion order, so sequential and merged-shard
    adjacencies yield identical masks.
    """
    ext_mask_b = cp.ext_mask_b
    m = n_converter

    index: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    scc_stack: list[int] = []
    scc_of: dict[int, int] = {}
    scc_events: list[int] = []
    counter = 0
    for root in adjacency:
        if root in index:
            continue
        work: list[tuple[int, Iterator[int]]] = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        scc_stack.append(root)
        on_stack.add(root)
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for nxt in succ_iter:
                if nxt not in index:
                    index[nxt] = lowlink[nxt] = counter
                    counter += 1
                    scc_stack.append(nxt)
                    on_stack.add(nxt)
                    work.append((nxt, iter(adjacency[nxt])))
                    advanced = True
                    break
                if nxt in on_stack:
                    lowlink[node] = min(lowlink[node], index[nxt])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                comp_idx = len(scc_events)
                events = 0
                while True:
                    member = scc_stack.pop()
                    on_stack.discard(member)
                    scc_of[member] = comp_idx
                    events |= ext_mask_b[member // m]
                    if member == node:
                        break
                scc_events.append(events)

    # propagate successor events (emission order = reverse topological)
    members_of: dict[int, list[int]] = {}
    for node, comp_idx in scc_of.items():
        members_of.setdefault(comp_idx, []).append(node)
    for comp_idx in range(len(scc_events)):
        events = scc_events[comp_idx]
        for node in members_of[comp_idx]:
            for nxt in adjacency[node]:
                j = scc_of[nxt]
                if j != comp_idx:
                    events |= scc_events[j]
        scc_events[comp_idx] = events

    obs.add("quotient.progress.tau_star_nodes", len(adjacency))
    obs.add("quotient.progress.tau_star_sccs", len(scc_events))
    return {node: scc_events[scc_of[node]] for node in adjacency}


def _round_tau_star(
    cp: CompiledProblem,
    succ_c: tuple[dict[int, tuple[int, ...]], ...],
    alive: set[int],
    n_converter: int,
    needed: list[int],
) -> dict[int, int]:
    """``τ*.⟨b, c⟩`` event masks for the requested product nodes."""
    adjacency = _adjacency_from(
        cp, succ_c, alive, n_converter, list(dict.fromkeys(needed))
    )
    return _tau_star_from_adjacency(cp, adjacency, n_converter)


def progress_phase_kernel(problem, c0, f, meter=None, resume=None):
    """The Fig. 6 loop over interned ids; see ``progress_phase``.

    Imports of the result types are deferred to the caller's module to keep
    a single definition site; this function returns the identical
    ``ProgressPhaseResult`` the reference loop produces (including returning
    the *original* ``c0`` object when round 0 removes nothing).  *meter* is
    an optional :class:`~repro.quotient.budget.BudgetMeter`, charged one
    ``pairs`` unit per product-pair check exactly as the reference loop.
    *resume* is a tuple of completed ``ProgressRound``s (label space, so
    checkpoints transfer between paths); the corresponding bad states are
    stripped from ``alive`` before the loop re-enters.
    """
    from .progress_phase import _replay_terminal
    from .types import ProgressPhaseResult, ProgressRound

    cp = compiled_problem(problem)
    int_index = {e: k for k, e in enumerate(cp.int_events)}

    # intern the converter: its states are the safety-phase pair sets
    c_states = list(c0.states)
    c_index = {c: ci for ci, c in enumerate(c_states)}
    m = len(c_states)
    succ_c_build: list[dict[int, list[int]]] = [{} for _ in range(m)]
    for s, e, s2 in c0.external:
        succ_c_build[c_index[s]].setdefault(int_index[e], []).append(c_index[s2])
    succ_c: tuple[dict[int, tuple[int, ...]], ...] = tuple(
        {k: tuple(v) for k, v in row.items()} for row in succ_c_build
    )
    # pair codes per converter state (duplicates impossible: f[c] is a set)
    ca_index = cp.ca.index
    cb_index = cp.cb.index
    nb = cp.n_component
    pairs_of: list[list[int]] = [
        [ca_index[a] * nb + cb_index[b] for a, b in f[c]] for c in c_states
    ]
    menus = cp.menus
    initial_ci = c_index[c0.initial]

    alive = set(range(m))
    rounds: list = []
    if resume:
        rounds = list(resume)
        removed: set = set()
        for completed in rounds:
            removed |= completed.bad_states
        terminal = _replay_terminal(c0, rounds, removed)
        if terminal is not None:
            return terminal
        alive = {ci for ci in alive if c_states[ci] not in removed}

    def snap() -> dict:
        return {"rounds": tuple(rounds)}

    from .parallel import (
        _emit_executor_stats,
        _make_executor,
        effective_workers,
        parallel_round_adjacency,
    )

    workers = effective_workers()
    executor = None

    def round_offered(needed: list[int]) -> dict[int, int]:
        """The round's ``τ*`` masks — sharded when workers are active."""
        nonlocal executor
        if workers > 1:
            if executor is None:
                executor = _make_executor(problem, workers)
            adjacency = parallel_round_adjacency(
                executor, succ_c, alive, m, needed, len(rounds)
            )
            return _tau_star_from_adjacency(cp, adjacency, m)
        return _round_tau_star(cp, succ_c, alive, m, needed)

    try:
        with obs.span("progress_phase") as phase_span:
            while True:
                with obs.span("progress_round", round=len(rounds)) as round_span:
                    needed: list[int] = []
                    for ci in alive:
                        base = ci
                        for code in pairs_of[ci]:
                            needed.append((code % nb) * m + base)
                    if meter is not None:
                        meter.charge(
                            pairs=len(needed), frontier=len(alive), snapshot=snap
                        )
                    with obs.span("tau_star", pairs=len(needed)):
                        offered = round_offered(needed)

                    bad: set[int] = set()
                    for ci in alive:
                        for code in pairs_of[ci]:
                            off = offered[(code % nb) * m + ci]
                            menu = menus[code // nb]
                            if not any(accept & off == accept for accept in menu):
                                bad.add(ci)
                                break
                    rounds.append(
                        ProgressRound(
                            round_index=len(rounds),
                            bad_states=frozenset(c_states[ci] for ci in bad),
                            remaining=len(alive) - len(bad),
                        )
                    )
                    round_span.set(
                        pairs_checked=len(needed),
                        bad=len(bad),
                        remaining=len(alive) - len(bad),
                    )
                    obs.add("quotient.progress.rounds", 1)
                    obs.add("quotient.progress.pairs_checked", len(needed))
                    obs.add("quotient.progress.bad_states_removed", len(bad))
                if not bad:
                    phase_span.set(exists=True, rounds=len(rounds))
                    obs.gauge("quotient.progress.final_states", len(alive))
                    if len(rounds) == 1:
                        spec = c0
                    else:
                        keep = {c_states[ci] for ci in alive}
                        spec = Specification(
                            c0.name,
                            keep,
                            c0.alphabet,
                            (
                                (s, e, s2)
                                for s, e, s2 in c0.external
                                if s in keep and s2 in keep
                            ),
                            (),
                            c0.initial,
                        )
                    return ProgressPhaseResult(spec=spec, rounds=tuple(rounds))
                if initial_ci in bad or len(bad) == len(alive):
                    phase_span.set(exists=False, rounds=len(rounds))
                    obs.gauge("quotient.progress.final_states", 0)
                    return ProgressPhaseResult(spec=None, rounds=tuple(rounds))
                alive -= bad
    finally:
        if executor is not None:
            executor.close()
            _emit_executor_stats(executor)
