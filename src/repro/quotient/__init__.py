"""The quotient algorithm (Section 4) — the paper's primary contribution."""

from .budget import (
    Budget,
    BudgetExceeded,
    BudgetMeter,
    InterruptRequested,
    make_meter,
)
from .diagnose import (
    BlockingPair,
    FrontierState,
    NonexistenceDiagnosis,
    diagnose_nonexistence,
    safety_failure_diagnostic,
)
from .hmap import ext_closure, extend_pairs, initial_pairs, ok
from .parallel import default_workers, effective_workers, use_workers
from .progress_phase import progress_phase
from .prune import (
    drop_vacuous_states,
    merge_equivalent_states,
    minimize_converter,
    prune_converter,
)
from .safety_phase import safety_phase
from .solve import solve_quotient, verify_converter
from .types import (
    Pair,
    PairSet,
    ProgressPhaseResult,
    ProgressRound,
    QuotientProblem,
    QuotientResult,
    SafetyPhaseResult,
)

__all__ = [
    "BlockingPair",
    "Budget",
    "BudgetExceeded",
    "BudgetMeter",
    "FrontierState",
    "InterruptRequested",
    "NonexistenceDiagnosis",
    "Pair",
    "PairSet",
    "ProgressPhaseResult",
    "ProgressRound",
    "QuotientProblem",
    "QuotientResult",
    "SafetyPhaseResult",
    "default_workers",
    "drop_vacuous_states",
    "effective_workers",
    "ext_closure",
    "extend_pairs",
    "initial_pairs",
    "make_meter",
    "use_workers",
    "merge_equivalent_states",
    "minimize_converter",
    "ok",
    "progress_phase",
    "prune_converter",
    "safety_phase",
    "diagnose_nonexistence",
    "safety_failure_diagnostic",
    "solve_quotient",
    "verify_converter",
]
