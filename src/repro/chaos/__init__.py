"""repro.chaos — an injectable fault plane for the execution substrate.

Where :mod:`repro.faults` models a hostile *medium* (the channels the
derived converter must survive), this package models a hostile
*machine*: dying pool workers, wedged processes, disks that run out of
space mid-checkpoint, results that arrive late or twice.  The supervised
runtime — :class:`~repro.quotient.parallel.ShardExecutor`'s worker
supervision and :mod:`repro.persist.store`'s retrying I/O — must keep
every output byte-identical to a fault-free run under any
:class:`ChaosPlan`; ``tests/test_chaos_differential.py`` is the
differential harness pinning that contract.

Nothing here runs unless activated (:func:`use_chaos`, ``REPRO_CHAOS``);
the disabled seams cost one global read.  See
``docs/robustness.md#runtime-chaos--supervision``.
"""

from .plan import (
    SITES,
    ChaosPlan,
    ChaosSpecError,
    ChaosState,
    active,
    plan_from_env,
    set_chaos,
    use_chaos,
)
from .retry import DEFAULT_STORE_RETRY, RetryPolicy

__all__ = [
    "SITES",
    "ChaosPlan",
    "ChaosSpecError",
    "ChaosState",
    "DEFAULT_STORE_RETRY",
    "RetryPolicy",
    "active",
    "plan_from_env",
    "set_chaos",
    "use_chaos",
]
