"""Seeded, deterministic fault schedules for the execution substrate.

The paper derives converters that stay correct when the *modeled* medium
misbehaves (:mod:`repro.faults`); this module applies the same
philosophy to the solver's own runtime.  A :class:`ChaosPlan` describes
a hostile environment for one run — pool workers that die or hang at the
Nth task, store writes that hit ``ENOSPC`` or land torn, task results
that arrive late or twice — and the supervised execution layers
(:mod:`repro.quotient.parallel`, :mod:`repro.persist.store`) consult it
through test-only seams.

Two properties make the plans usable in differential tests:

* **Determinism.**  Every decision is a pure function of
  ``(seed, site, n)`` where *site* names the injection point
  (``"worker.task"``, ``"store.write"``, …) and *n* is that site's own
  occurrence counter.  The same plan therefore injects the same faults
  on every run regardless of scheduling — and entirely independent calls
  (a retry, a different worker) draw independent decisions.
* **Zero hot-path cost when disabled.**  Mirroring the obs
  null-collector pattern, the seams cost one module-global read and a
  ``None`` check when no plan is active.  Activation is explicit:
  :func:`use_chaos` / :func:`set_chaos` in-process, or the
  ``REPRO_CHAOS`` environment variable (a ``key=value`` comma list, e.g.
  ``REPRO_CHAOS="seed=7,p_kill=0.05,p_write_enospc=0.2"``) for CLI and
  CI runs.

The injected faults are *transient by construction*: each consultation
advances the site counter, so a retried operation draws a fresh decision
— exactly the failure model the retry/supervision layers are built to
survive.  Outputs must remain byte-identical to fault-free runs under
any plan; ``tests/test_chaos_differential.py`` pins that contract over
hundreds of random problems.
"""

from __future__ import annotations

import os
import random
from contextlib import contextmanager
from dataclasses import dataclass, fields
from typing import Iterator

from .. import obs
from ..errors import ReproError

__all__ = [
    "ChaosPlan",
    "ChaosSpecError",
    "ChaosState",
    "active",
    "plan_from_env",
    "set_chaos",
    "use_chaos",
]

#: Sites a plan can inject at, for validation and documentation.
SITES = (
    "worker.task",      # pool-worker task boundary (kill / hang / raise)
    "store.write",      # persist.store envelope writes
    "store.read",       # persist.store envelope reads
    "executor.result",  # coordinator-side result arrivals (delay / dup)
    "serve.job",        # serve-layer job execution (kill / hang / raise)
)


class ChaosSpecError(ReproError):
    """A ``REPRO_CHAOS`` spec (or plan) names something that does not exist.

    Raised for unknown spec keys and for unknown site names in the
    ``sites=`` filter — a typo must fail loudly, never silently disable
    the fault it meant to inject.  ``unknown`` holds the offending names,
    ``valid`` the accepted ones, so tools can render a suggestion without
    parsing the message.
    """

    def __init__(
        self, message: str, *, unknown: tuple[str, ...], valid: tuple[str, ...]
    ) -> None:
        self.unknown = tuple(unknown)
        self.valid = tuple(valid)
        super().__init__(message)


def _probability(name: str, value: float) -> None:
    if not (isinstance(value, (int, float)) and 0.0 <= value <= 1.0):
        raise ReproError(f"{name} must be a probability in [0, 1], got {value!r}")


def _indices(name: str, value: tuple) -> None:
    if not all(isinstance(v, int) and v >= 0 for v in value):
        raise ReproError(f"{name} must hold non-negative ints, got {value!r}")


@dataclass(frozen=True)
class ChaosPlan:
    """One run's fault schedule; immutable, picklable, fully seeded.

    Every fault has two knobs: an explicit index tuple (``kill_at=(3,)``
    fires at exactly the 4th worker task — targeted tests) and a
    probability (``p_kill=0.05`` fires at ~5% of tasks, decided by the
    seeded hash of ``(seed, site, n)`` — randomized sweeps).  Either
    firing injects the fault.

    Worker faults (site ``worker.task``; the counter is per worker
    process, so ``kill_at=(2,)`` kills *each* worker at its 3rd task):

    * ``kill_at`` / ``p_kill`` — the worker process exits hard
      (``os._exit``), simulating an OOM kill or a crashed machine.
    * ``hang_at`` / ``p_hang`` — the worker sleeps ``hang_s`` seconds
      before answering, simulating a wedged process; the coordinator's
      task deadline must recover.
    * ``raise_at`` / ``p_raise`` — the task raises :class:`OSError`,
      simulating a transient in-worker failure.

    Store faults (sites ``store.write`` / ``store.read``, counted per
    process across all paths):

    * ``write_error_at`` / ``p_write_error`` — the write raises
      ``OSError(EIO)`` before touching the filesystem.
    * ``write_enospc_at`` / ``p_write_enospc`` — the write raises
      ``OSError(ENOSPC)``.
    * ``write_partial_at`` / ``p_write_partial`` — the write *appears*
      to succeed but leaves a torn (truncated) primary file, after
      rotating the previous good snapshot to ``.prev`` — the crash mode
      the store's fallback machinery exists for.
    * ``read_error_at`` / ``p_read_error`` — the read raises
      ``OSError(EIO)``.

    Executor-result faults (site ``executor.result``):

    * ``delay_at`` / ``p_delay`` — a completed pool result is held back
      for ``delay_polls`` pump cycles before becoming visible.
    * ``dup_at`` / ``p_dup`` — a completed result is delivered twice;
      the second delivery must be dropped by the executor and must not
      double-charge the budget.
    """

    seed: int = 0
    # worker faults
    kill_at: tuple[int, ...] = ()
    p_kill: float = 0.0
    hang_at: tuple[int, ...] = ()
    p_hang: float = 0.0
    hang_s: float = 30.0
    raise_at: tuple[int, ...] = ()
    p_raise: float = 0.0
    # store faults
    write_error_at: tuple[int, ...] = ()
    p_write_error: float = 0.0
    write_enospc_at: tuple[int, ...] = ()
    p_write_enospc: float = 0.0
    write_partial_at: tuple[int, ...] = ()
    p_write_partial: float = 0.0
    read_error_at: tuple[int, ...] = ()
    p_read_error: float = 0.0
    # executor-result faults
    delay_at: tuple[int, ...] = ()
    p_delay: float = 0.0
    delay_polls: int = 2
    dup_at: tuple[int, ...] = ()
    p_dup: float = 0.0
    #: Restrict injection to these sites (:data:`SITES` names); empty
    #: means "all sites".  A name outside :data:`SITES` raises
    #: :class:`ChaosSpecError` — never a silent no-op.
    sites: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name.startswith("p_"):
                _probability(f.name, value)
            elif f.name.endswith("_at"):
                if isinstance(value, list):
                    object.__setattr__(self, f.name, tuple(value))
                    value = getattr(self, f.name)
                _indices(f.name, value)
        if self.hang_s < 0:
            raise ReproError(f"hang_s must be >= 0, got {self.hang_s!r}")
        if self.delay_polls < 1:
            raise ReproError(
                f"delay_polls must be >= 1, got {self.delay_polls!r}"
            )
        if isinstance(self.sites, list):
            object.__setattr__(self, "sites", tuple(self.sites))
        unknown = tuple(s for s in self.sites if s not in SITES)
        if unknown:
            raise ChaosSpecError(
                f"unknown chaos site name(s) {sorted(unknown)} in sites= "
                f"(valid sites: {', '.join(SITES)})",
                unknown=unknown,
                valid=SITES,
            )

    def site_enabled(self, site: str) -> bool:
        """Whether injection may fire at *site* under this plan's filter."""
        return not self.sites or site in self.sites

    # ------------------------------------------------------------------
    # the decision function: pure in (seed, site, n)
    # ------------------------------------------------------------------
    def _fires(self, site: str, n: int, at: tuple[int, ...], p: float) -> bool:
        if n in at:
            return True
        if p <= 0.0:
            return False
        return random.Random(f"{self.seed}|{site}|{n}").random() < p

    def kill_worker(self, n: int) -> bool:
        return self._fires("worker.kill", n, self.kill_at, self.p_kill)

    def hang_worker(self, n: int) -> bool:
        return self._fires("worker.hang", n, self.hang_at, self.p_hang)

    def raise_in_worker(self, n: int) -> bool:
        return self._fires("worker.raise", n, self.raise_at, self.p_raise)

    def store_write_fault(self, n: int) -> str | None:
        """``"partial"`` / ``"enospc"`` / ``"error"`` for write *n*, or None."""
        if self._fires("store.write.partial", n, self.write_partial_at,
                       self.p_write_partial):
            return "partial"
        if self._fires("store.write.enospc", n, self.write_enospc_at,
                       self.p_write_enospc):
            return "enospc"
        if self._fires("store.write.error", n, self.write_error_at,
                       self.p_write_error):
            return "error"
        return None

    def store_read_fault(self, n: int) -> bool:
        return self._fires("store.read", n, self.read_error_at, self.p_read_error)

    def result_delay(self, n: int) -> int:
        """Pump cycles to hold result *n* back, or 0 for on-time delivery."""
        if self._fires("executor.delay", n, self.delay_at, self.p_delay):
            return self.delay_polls
        return 0

    def result_duplicate(self, n: int) -> bool:
        return self._fires("executor.dup", n, self.dup_at, self.p_dup)

    @property
    def wants_workers(self) -> bool:
        """Whether any worker-side fault can ever fire (kept out of the
        pool initializer otherwise, so fault-free workers stay pristine)."""
        return self.site_enabled("worker.task") and bool(
            self.kill_at or self.p_kill
            or self.hang_at or self.p_hang
            or self.raise_at or self.p_raise
        )

    # ------------------------------------------------------------------
    # REPRO_CHAOS spec strings
    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse a ``key=value`` comma list into a plan.

        Ints and floats parse naturally; index tuples are colon-separated
        (``kill_at=2:5``), as is the site filter
        (``sites=worker.task:store.write``).  Unknown keys and unknown
        site names are rejected with a structured
        :class:`ChaosSpecError` so a typo cannot silently disable the
        fault it meant to inject.
        """
        known = {f.name: f for f in fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ReproError(
                    f"chaos spec entry {part!r} is not key=value "
                    f"(full spec: {spec!r})"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key not in known:
                raise ChaosSpecError(
                    f"unknown chaos spec key {key!r} "
                    f"(known: {', '.join(sorted(known))})",
                    unknown=(key,),
                    valid=tuple(sorted(known)),
                )
            try:
                if key == "sites":
                    kwargs[key] = tuple(
                        v for v in raw.split(":") if v != ""
                    )
                elif key.endswith("_at"):
                    kwargs[key] = tuple(
                        int(v) for v in raw.split(":") if v != ""
                    )
                elif key in ("seed", "delay_polls"):
                    kwargs[key] = int(raw)
                else:
                    kwargs[key] = float(raw)
            except ValueError as exc:
                raise ReproError(
                    f"cannot parse chaos spec value {raw!r} for {key!r}: {exc}"
                ) from exc
        return cls(**kwargs)


class ChaosState:
    """A plan plus its per-site occurrence counters (one per process).

    The counters make repeated consultations of one site draw distinct
    decisions — fault *n*, then fault *n+1* — which is what turns every
    schedule into a transient-fault model.  :meth:`consult` also counts
    each injected fault into obs (``chaos.injected`` and
    ``chaos.injected.<site>``), so a chaotic run's recovery counters can
    be read next to what was thrown at it.
    """

    __slots__ = ("plan", "_counts")

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self._counts: dict[str, int] = {}

    def next_index(self, site: str) -> int:
        """This site's occurrence number (0-based), advancing the counter."""
        n = self._counts.get(site, 0)
        self._counts[site] = n + 1
        return n

    def injected(self, site: str) -> None:
        """Record one injected fault at *site* in the obs counters."""
        obs.add("chaos.injected", 1)
        obs.add(f"chaos.injected.{site}", 1)

    # convenience consultations used by the seams ----------------------
    # A site outside the plan's ``sites=`` filter neither fires nor
    # advances its counter, so filtered-out seams are exact no-ops and
    # the enabled sites' schedules are unchanged by the filtering.
    def store_write_fault(self) -> str | None:
        if not self.plan.site_enabled("store.write"):
            return None
        fault = self.plan.store_write_fault(self.next_index("store.write"))
        if fault is not None:
            self.injected(f"store.write.{fault}")
        return fault

    def store_read_fault(self) -> bool:
        if not self.plan.site_enabled("store.read"):
            return False
        if self.plan.store_read_fault(self.next_index("store.read")):
            self.injected("store.read")
            return True
        return False

    def result_fault(self) -> tuple[int, bool]:
        """``(delay_polls, duplicate)`` for the next executor result."""
        if not self.plan.site_enabled("executor.result"):
            return 0, False
        n = self.next_index("executor.result")
        delay = self.plan.result_delay(n)
        dup = self.plan.result_duplicate(n)
        if delay:
            self.injected("executor.delay")
        if dup:
            self.injected("executor.dup")
        return delay, dup

    def serve_job_fault(self) -> str | None:
        """``"kill"`` / ``"hang"`` / ``"raise"`` for the next served job.

        The serve layer (:mod:`repro.serve.workers`) reuses the worker
        fault knobs at its own site: a *kill* simulates the job's worker
        dying mid-solve (recovered via checkpoint resume), a *hang* a
        wedged worker (recovered via the job deadline), a *raise* a
        transient pre-flight failure (recovered via RetryPolicy).
        """
        if not self.plan.site_enabled("serve.job"):
            return None
        n = self.next_index("serve.job")
        if self.plan.kill_worker(n):
            self.injected("serve.job.kill")
            return "kill"
        if self.plan.hang_worker(n):
            self.injected("serve.job.hang")
            return "hang"
        if self.plan.raise_in_worker(n):
            self.injected("serve.job.raise")
            return "raise"
        return None


# ----------------------------------------------------------------------
# activation (mirrors the obs current-collector pattern)
# ----------------------------------------------------------------------
def plan_from_env() -> ChaosPlan | None:
    """The plan described by ``REPRO_CHAOS``, or ``None`` when unset."""
    spec = os.environ.get("REPRO_CHAOS")
    if not spec:
        return None
    return ChaosPlan.from_spec(spec)


_STATE: ChaosState | None = None
_env_plan = plan_from_env()
if _env_plan is not None:
    _STATE = ChaosState(_env_plan)
del _env_plan


def active() -> ChaosState | None:
    """The chaos state faults are drawn from right now (default ``None``).

    This is the seam the runtime consults; the disabled path is one
    global read and a ``None`` check.
    """
    return _STATE


def set_chaos(plan: ChaosPlan | None) -> ChaosState | None:
    """Install *plan* (fresh counters) globally; returns the previous state."""
    global _STATE
    previous = _STATE
    _STATE = None if plan is None else ChaosState(plan)
    return previous


@contextmanager
def use_chaos(plan: ChaosPlan | None) -> Iterator[ChaosState | None]:
    """Scope a chaos plan: installed on entry, previous state restored."""
    global _STATE
    previous = set_chaos(plan)
    try:
        yield _STATE
    finally:
        _STATE = previous
