"""Deterministic retry/backoff policies for transient I/O faults.

A :class:`RetryPolicy` wraps an idempotent operation — a store write, an
envelope read, a ledger append — and retries it on a configurable
exception family with exponentially growing, *deterministically*
jittered delays: the jitter for attempt *k* at site *s* is a pure
function of ``(seed, s, k)``, so two runs of the same schedule sleep the
same amounts and tests can pin the exact delay sequence.  Sleep and
clock are injectable, so no test ever waits on real time.

The policy is observable: every attempt, retry, recovery (success after
at least one retry), and give-up is counted (``retry.*``), and a
recovery emits a ``note`` event into the live progress stream when a
reporter is installed — a resilient run *tells* you it limped through.

What is retried matters as much as how: integrity failures (a checkpoint
that parses but fails its hash) are **not** transient and are never
retried — they flow to the store's ``.prev`` previous-good fallback
instead.  Only the exception types in ``retry_on`` (by default
:class:`OSError`) are considered transient, and types in ``give_up_on``
(by default :class:`FileNotFoundError`: a missing file stays missing)
fail fast even when they match ``retry_on``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

from .. import obs
from ..obs.progress import current_reporter

__all__ = ["RetryPolicy", "DEFAULT_STORE_RETRY"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and with what delays, to retry a transient failure.

    ``max_attempts``
        Total tries including the first (1 = no retries).
    ``base_delay_s`` / ``multiplier`` / ``max_delay_s``
        Exponential backoff: attempt *k*'s nominal delay is
        ``base_delay_s * multiplier**(k-1)``, capped at ``max_delay_s``.
    ``jitter``
        Fractional spread applied to the nominal delay: the actual delay
        is ``nominal * (1 + jitter * u)`` with ``u`` drawn uniformly from
        ``[-1, 1]`` by the seeded hash of ``(seed, site, attempt)`` —
        deterministic, but decorrelated across sites and attempts.
    ``seed``
        Jitter seed; two policies differing only in seed retry at
        different offsets (what you want across a worker fleet).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.05
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")

    def delay_s(self, site: str, attempt: int) -> float:
        """The deterministic jittered delay before retry *attempt* (1-based)."""
        nominal = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if nominal <= 0 or self.jitter == 0:
            return nominal
        u = random.Random(f"{self.seed}|{site}|{attempt}").uniform(-1.0, 1.0)
        return max(0.0, nominal * (1.0 + self.jitter * u))

    def call(
        self,
        fn: Callable[[], T],
        *,
        site: str,
        retry_on: tuple[type[BaseException], ...] = (OSError,),
        give_up_on: tuple[type[BaseException], ...] = (FileNotFoundError,),
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> T:
        """Run *fn* under this policy; the first successful return wins.

        Exceptions matching *give_up_on* (or not matching *retry_on*)
        propagate immediately; a *retry_on* failure on the final attempt
        propagates after counting a ``retry.giveups``.  A success after
        one or more retries counts a ``retry.recoveries`` and notes the
        recovery (site, attempts, elapsed) into the progress stream.
        """
        started = clock()
        attempt = 0
        while True:
            attempt += 1
            obs.add("retry.attempts", 1)
            try:
                result = fn()
            except give_up_on:
                raise
            except retry_on:
                if attempt >= self.max_attempts:
                    obs.add("retry.giveups", 1)
                    raise
                obs.add("retry.retries", 1)
                sleep(self.delay_s(site, attempt))
                continue
            if attempt > 1:
                obs.add("retry.recoveries", 1)
                reporter = current_reporter()
                if reporter is not None:
                    reporter.note(
                        recovered=site,
                        retry_attempts=attempt,
                        retry_elapsed_s=round(clock() - started, 6),
                    )
            return result


#: The policy wrapped around :mod:`repro.persist.store` I/O (reads,
#: writes, and therefore ledger appends).  Small budget, millisecond
#: delays: a store operation sits on a charge boundary, so a retry must
#: never stall the solve noticeably.
DEFAULT_STORE_RETRY = RetryPolicy(
    max_attempts=3, base_delay_s=0.002, max_delay_s=0.05
)
