"""In-process doubles for chaos-differential tests.

The differential suite solves hundreds of random problems under fault
schedules; paying a real :mod:`multiprocessing` pool per problem would
dominate the runtime, so this module provides an **in-process pool
double** that evaluates tasks synchronously while presenting the same
future interface — including the failure modes: a "killed" worker yields
a future that never completes (plus a fresh fake pid, so the
supervisor's heartbeat sees the death), a "hung" worker likewise, and a
"raising" worker delivers its exception through ``get``.

Combined with :class:`FakeClock` (advances a fixed step per read, so
task deadlines expire without real sleeping), the real
:class:`~repro.quotient.parallel.ShardExecutor` supervision logic runs
unmodified over its fake pool: detection, inline recovery, respawn
accounting, and degradation are all the production code paths.  Only the
worker *processes* are simulated.
"""

from __future__ import annotations

import itertools
import multiprocessing
from typing import Callable

from .plan import ChaosPlan

__all__ = ["FakeClock", "InlinePool", "chaos_executor_factory"]


class FakeClock:
    """A monotonic clock advancing ``step`` per read (no real waiting)."""

    def __init__(self, step: float = 0.01) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class _ReadyFuture:
    def __init__(self, value) -> None:
        self._value = value

    def ready(self) -> bool:
        return True

    def get(self, timeout=None):
        return self._value


class _RaisingFuture:
    def __init__(self, exc: BaseException) -> None:
        self._exc = exc

    def ready(self) -> bool:
        return True

    def get(self, timeout=None):
        raise self._exc


class _LostFuture:
    """A task whose worker died or hung: never ready, ``get`` times out."""

    def ready(self) -> bool:
        return False

    def get(self, timeout=None):
        raise multiprocessing.TimeoutError


_fake_pids = itertools.count(1_000_000)


class _FakeProc:
    __slots__ = ("pid",)

    def __init__(self) -> None:
        self.pid = next(_fake_pids)


class InlinePool:
    """A pool double: synchronous evaluation, plan-driven failures.

    Matches the slice of the :class:`multiprocessing.pool.Pool` surface
    the executor touches (``apply_async`` / ``terminate`` / ``join`` and
    the ``_pool`` worker-process list the heartbeat inspects).  The task
    index *n* plays the role of the per-worker task counter of a real
    chaotic pool; a kill decision replaces one fake worker's pid, which
    is exactly what the supervisor's heartbeat observes when a real
    worker dies and the pool respawns it.
    """

    def __init__(self, problem, workers: int, plan: ChaosPlan | None) -> None:
        from ..quotient import parallel
        from ..quotient.kernel import compiled_problem

        self._parallel = parallel
        self._cp = compiled_problem(problem)
        self._plan = plan
        self._kind_of = {fn: kind for kind, fn in parallel._TASK_FNS.items()}
        self._n = 0
        self._pool = [_FakeProc() for _ in range(workers)]
        self.terminated = False

    def apply_async(self, fn: Callable, args):
        n = self._n
        self._n += 1
        plan = self._plan
        if plan is not None:
            if plan.kill_worker(n):
                self._pool[n % len(self._pool)] = _FakeProc()
                return _LostFuture()
            if plan.hang_worker(n):
                return _LostFuture()
            if plan.raise_in_worker(n):
                return _RaisingFuture(
                    OSError(f"chaos: injected worker fault at task {n}")
                )
        kind = self._kind_of[fn]
        return _ReadyFuture(self._parallel._run_local(self._cp, kind, args))

    def terminate(self) -> None:
        self.terminated = True

    def join(self) -> None:
        return None


def chaos_executor_factory(
    plan: ChaosPlan | None = None,
    *,
    task_deadline_s: float = 0.05,
    poll_s: float = 0.0,
    respawn_budget: int | None = None,
    clock_step: float = 0.01,
):
    """An executor factory for :func:`_use_executor_factory` seams.

    Builds real :class:`~repro.quotient.parallel.ShardExecutor`\\ s over
    :class:`InlinePool` with a :class:`FakeClock`, so supervision runs at
    full speed.  *plan* overrides the ambient chaos plan for the fake
    workers (the coordinator-side seams still read the ambient state).
    """
    from ..quotient.parallel import ShardExecutor

    def factory(problem, workers: int) -> ShardExecutor:
        kwargs: dict = {}
        if respawn_budget is not None:
            kwargs["respawn_budget"] = respawn_budget
        return ShardExecutor(
            problem,
            workers,
            pool_factory=lambda p, w, ambient: InlinePool(
                p, w, plan if plan is not None else ambient
            ),
            task_deadline_s=task_deadline_s,
            poll_s=poll_s,
            clock=FakeClock(clock_step),
            **kwargs,
        )

    return factory
