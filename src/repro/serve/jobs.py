"""Job documents: what a client submits and what the server executes.

A :class:`JobRequest` is a JSON-safe description of one unit of service
work — a quotient solve, a resilience sweep, or a semantic analysis —
with the specs embedded in :mod:`repro.io.json_codec` form.  Its
:meth:`~JobRequest.fingerprint` is the server's content address: two
requests asking the same mathematical question hash identically no
matter how their specs are named or which client sent them, because it
reuses the name-insensitive SHA-256 fingerprints of
:mod:`repro.persist.checkpoint`.  For ``solve`` jobs the fingerprint *is*
:func:`~repro.persist.checkpoint.problem_fingerprint`, so cached results,
run-ledger records, and resume checkpoints all share one key space.

Priorities, deadlines, and budgets deliberately stay **out** of the
fingerprint: they shape *how* a job runs, not *what* it computes.  Only
complete results are ever cached, so a budget-tripped run can never
poison the cache for an unbudgeted one.

:func:`execute_job` is the pure execution core — no queueing, retry, or
persistence; that is :mod:`repro.serve.workers`' business.  Its returned
body is *canonical*: machine-dependent fields (``stats``) and
execution-history fields (``degradations``) are stripped, so a cached,
retried, resumed, or degraded execution is byte-identical to a direct
:func:`~repro.quotient.solve_quotient` call on the same inputs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

from ..errors import ServeError
from ..io.json_codec import spec_from_dict
from ..persist.checkpoint import problem_fingerprint, spec_fingerprint
from ..quotient.budget import Budget
from ..quotient.types import QuotientProblem

__all__ = [
    "JOB_KINDS",
    "JOB_SCHEMA",
    "ExecutionOutcome",
    "JobRequest",
    "execute_job",
]

#: Version of the job request/record documents.
JOB_SCHEMA = 1

#: Work the server knows how to execute.
JOB_KINDS = ("solve", "resilience", "analyze")

_REQUEST_KEYS = frozenset(
    {"schema", "kind", "payload", "priority", "deadline_s", "budget", "label"}
)
_BUDGET_KEYS = frozenset({"max_pairs", "max_states", "wall_time_s"})


def _sha256_of(doc: dict) -> str:
    canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _specs_from(payload: Mapping[str, Any], key: str, *, many: bool = False):
    try:
        if many:
            docs = payload[key]
            if not isinstance(docs, list) or not docs:
                raise ServeError(
                    f"payload field {key!r} must be a non-empty list of specs"
                )
            return [spec_from_dict(d) for d in docs]
        return spec_from_dict(payload[key])
    except KeyError as exc:
        raise ServeError(f"payload is missing the {key!r} spec") from exc


@dataclass(frozen=True)
class JobRequest:
    """One submitted unit of work (validated, JSON-round-trippable).

    ``priority`` orders admission under load: higher runs first, and the
    *lowest* priority is shed first when the queue saturates.
    ``deadline_s`` bounds one execution attempt's wall time (cooperative,
    via :class:`~repro.persist.InterruptController`); ``budget`` bounds
    its work counters.  Neither affects the fingerprint.
    """

    kind: str
    payload: Mapping[str, Any]
    priority: int = 0
    deadline_s: float | None = None
    budget: Mapping[str, Any] | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServeError(
                f"unknown job kind {self.kind!r} (accepted: "
                f"{', '.join(JOB_KINDS)})"
            )
        if not isinstance(self.payload, Mapping):
            raise ServeError("payload must be an object")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ServeError(f"priority must be an int, got {self.priority!r}")
        if self.deadline_s is not None and (
            not isinstance(self.deadline_s, (int, float))
            or self.deadline_s <= 0
        ):
            raise ServeError(
                f"deadline_s must be a positive number, got {self.deadline_s!r}"
            )
        if self.budget is not None:
            if not isinstance(self.budget, Mapping):
                raise ServeError("budget must be an object")
            unknown = sorted(set(self.budget) - _BUDGET_KEYS)
            if unknown:
                raise ServeError(
                    f"unknown budget field(s) {unknown} "
                    f"(accepted: {', '.join(sorted(_BUDGET_KEYS))})"
                )

    # -- codec ---------------------------------------------------------
    def to_json_dict(self) -> dict:
        return {
            "schema": JOB_SCHEMA,
            "kind": self.kind,
            "payload": dict(self.payload),
            "priority": self.priority,
            "deadline_s": self.deadline_s,
            "budget": dict(self.budget) if self.budget is not None else None,
            "label": self.label,
        }

    @classmethod
    def from_json_dict(cls, doc: Any) -> "JobRequest":
        if not isinstance(doc, dict):
            raise ServeError(f"job request is not an object: {doc!r}")
        unknown = sorted(set(doc) - _REQUEST_KEYS)
        if unknown:
            raise ServeError(
                f"job request carries unknown field(s) {unknown} "
                f"(accepted: {', '.join(sorted(_REQUEST_KEYS))})"
            )
        if doc.get("schema", JOB_SCHEMA) != JOB_SCHEMA:
            raise ServeError(
                f"job request has unsupported schema {doc.get('schema')!r} "
                f"(this server reads {JOB_SCHEMA})"
            )
        if "kind" not in doc or "payload" not in doc:
            raise ServeError("job request needs 'kind' and 'payload'")
        return cls(
            kind=doc["kind"],
            payload=doc["payload"],
            priority=doc.get("priority", 0),
            deadline_s=doc.get("deadline_s"),
            budget=doc.get("budget"),
            label=doc.get("label", ""),
        )

    # -- identity ------------------------------------------------------
    def fingerprint(self) -> str:
        """The content address of *what this job computes*.

        Decodes the payload specs (so a malformed payload fails here, at
        admission, not inside a worker) and hashes their name-insensitive
        fingerprints.  ``solve`` jobs use the checkpoint layer's
        :func:`~repro.persist.checkpoint.problem_fingerprint` verbatim —
        the same key the resume machinery validates against — so a solve
        job, its cached result, and its crash checkpoints coincide.
        """
        if self.kind == "solve":
            problem = QuotientProblem.build(
                _specs_from(self.payload, "service"),
                _specs_from(self.payload, "component"),
                self.payload.get("int_events"),
            )
            return problem_fingerprint(problem)
        if self.kind == "resilience":
            return _sha256_of(
                {
                    "kind": "serve-resilience",
                    "service": spec_fingerprint(
                        _specs_from(self.payload, "service")
                    ),
                    "components": [
                        spec_fingerprint(s)
                        for s in _specs_from(
                            self.payload, "components", many=True
                        )
                    ],
                    "converter": spec_fingerprint(
                        _specs_from(self.payload, "converter")
                    ),
                    "target": self.payload.get("target"),
                    "severities": list(self.payload.get("severities", (1, 2))),
                    "timeout": self.payload.get("timeout", "timeout"),
                }
            )
        assert self.kind == "analyze"
        return _sha256_of(
            {
                "kind": "serve-analysis",
                "specs": sorted(
                    spec_fingerprint(s)
                    for s in _specs_from(self.payload, "specs", many=True)
                ),
            }
        )

    def budget_object(self) -> Budget | None:
        if self.budget is None:
            return None
        try:
            return Budget(**dict(self.budget))
        except (TypeError, ValueError) as exc:
            raise ServeError(f"invalid budget: {exc}") from exc


@dataclass(frozen=True)
class ExecutionOutcome:
    """What one successful execution attempt produced.

    ``body`` is the canonical result (cacheable, byte-stable);
    ``counters`` the nested deterministic work counters for the run
    ledger; ``degradations`` any :class:`~repro.quotient.parallel.
    DegradedExecution` records drained from the run (execution history,
    kept out of ``body`` by construction).
    """

    body: dict
    verdict: str | None
    counters: dict = field(default_factory=dict)
    degradations: tuple = ()


def execute_job(
    request: JobRequest,
    *,
    interrupt: Any = None,
    resume_from: Any = None,
) -> ExecutionOutcome:
    """Run *request* to completion on the calling thread.

    Raises whatever the underlying engine raises —
    :class:`~repro.errors.BudgetExceeded` and
    :class:`~repro.errors.InterruptRequested` (both carrying checkpoints
    for ``solve``) propagate to the supervisor, which owns retry and
    resume policy.
    """
    budget = request.budget_object()
    if request.kind == "solve":
        from ..quotient.solve import solve_quotient

        result = solve_quotient(
            _specs_from(request.payload, "service"),
            _specs_from(request.payload, "component"),
            int_events=request.payload.get("int_events"),
            budget=budget,
            interrupt=interrupt,
            resume_from=resume_from,
        )
        body = result.to_json_dict()
        body.pop("stats", None)
        body.pop("degradations", None)
        counters = result.phase_counters()
        return ExecutionOutcome(
            body=body,
            verdict="converter" if result.exists else "no-converter",
            counters=counters,
            degradations=result.degradations,
        )
    if request.kind == "resilience":
        from ..faults import default_grid, evaluate_resilience

        severities = tuple(request.payload.get("severities", (1, 2)))
        matrix = evaluate_resilience(
            _specs_from(request.payload, "service"),
            _specs_from(request.payload, "components", many=True),
            _specs_from(request.payload, "converter"),
            target=request.payload.get("target"),
            grid=default_grid(
                severities,
                timeout=request.payload.get("timeout", "timeout"),
            ),
            budget=budget,
            interrupt=interrupt,
        )
        counts = matrix.counts()
        bad = sum(n for v, n in counts.items() if v != "resilient")
        return ExecutionOutcome(
            body=matrix.to_json_dict(),
            verdict="resilient" if bad == 0 else "degraded",
            counters={"cells": len(matrix.cells), "verdicts": dict(counts)},
        )
    assert request.kind == "analyze"
    from ..lint import analyze_composition, analyze_spec

    specs = _specs_from(request.payload, "specs", many=True)
    if len(specs) == 1:
        report = analyze_spec(specs[0], budget=budget, interrupt=interrupt)
    else:
        report = analyze_composition(specs, budget=budget, interrupt=interrupt)
    body = report.to_json_dict()
    return ExecutionOutcome(
        body=body,
        verdict="clean" if not report.errors else "findings",
        counters={
            "diagnostics": len(report.diagnostics),
            "errors": len(report.errors),
            "warnings": len(report.warnings),
        },
    )
