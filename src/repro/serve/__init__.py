"""repro.serve — quotient derivation as a crash-tolerant service.

The batch entry points (:func:`~repro.quotient.solve_quotient`,
:func:`~repro.faults.evaluate_resilience`, :mod:`repro.lint`) wrapped in
an asyncio HTTP/JSON server with content-addressed deduplication,
bounded admission, supervised retry/resume execution, and graceful
degradation.  Everything durable rides on :mod:`repro.persist` — atomic
envelope writes, ``.prev`` fallback, integrity-checked reads — so the
server inherits the same crash-consistency story (and ``REPRO_CHAOS``
fault schedule) as the checkpoint layer.

Layering (each module only imports downward):

``jobs``         what a job *is*: validated requests, content
                 fingerprints, the pure ``execute_job``
``store_index``  the durable state: results, job records, checkpoints,
                 the artifact-graph index, the run ledger
``queue``        bounded admission: priorities, shedding, backpressure
``workers``      supervision: retry, resume-after-death, respawn budget,
                 degraded drain
``app``          the asyncio HTTP server tying it together
``client``       a stdlib client (CLI ``submit``/``status``, CI smoke)

See ``docs/serving.md`` for the protocol and the robustness contract.
"""

from .app import TERMINAL_STATES, DerivationServer
from .client import ServeClient
from .jobs import JOB_KINDS, ExecutionOutcome, JobRequest, execute_job
from .queue import Admission, AdmissionQueue
from .store_index import ResultStore
from .workers import DEFAULT_JOB_RETRY, JobOutcome, WorkerSupervisor

__all__ = [
    "Admission",
    "AdmissionQueue",
    "DEFAULT_JOB_RETRY",
    "DerivationServer",
    "ExecutionOutcome",
    "JOB_KINDS",
    "JobOutcome",
    "JobRequest",
    "ResultStore",
    "ServeClient",
    "TERMINAL_STATES",
    "WorkerSupervisor",
    "execute_job",
]
