"""The server's durable state: results, jobs, checkpoints, index, ledger.

Everything lives under one root directory, every document inside a
:class:`~repro.persist.Store` envelope — atomic rename, ``.prev``
fallback, integrity-checked reads — so the server's cache survives the
same crash and torn-write schedules its checkpoints do, and the
``REPRO_CHAOS`` store fault sites exercise all of it for free::

    <root>/
      index.json              spec → problem → result artifact graph
      server.json             monotonic job-id sequence
      results/<fp>.json       canonical result bodies, keyed by fingerprint
      jobs/<id>.json          job records (the crash-recovery journal)
      checkpoints/<fp>.json   solve checkpoints of killed/drained jobs
      ledger.json             the run ledger (``history --kind served``)

The **index** is the artifact graph the ROADMAP asks for: each entry
maps a result fingerprint to its kind, verdict, and the fingerprints of
the specs that produced it, so "every cached derivation involving this
spec" is one scan.  The index is a cache of the ``results/`` directory —
rebuildable, never authoritative — so a lost index costs a re-solve, not
an answer.

Job records double as the **crash journal**: every state transition is
persisted, so a restarted server can re-enqueue everything that was
queued or running and resume solves from their checkpoints (see
:meth:`ResultStore.recoverable_jobs`).
"""

from __future__ import annotations

import os
from typing import Any

from .. import obs
from ..errors import PersistError
from ..persist import Checkpoint, Store, load_checkpoint, save_checkpoint

__all__ = ["ResultStore"]

INDEX_SCHEMA = 1

#: Job states that survive a restart and must be re-run.
RECOVERABLE_STATES = ("queued", "running", "retrying", "interrupted")


class ResultStore:
    """All durable server state under one *root* directory."""

    def __init__(self, root: str) -> None:
        self.root = root
        self._docs = Store(root)
        self._results = Store(os.path.join(root, "results"))
        self._jobs = Store(os.path.join(root, "jobs"))
        self._checkpoints = Store(os.path.join(root, "checkpoints"))
        self.ledger_path = os.path.join(root, "ledger.json")

    # -- server state (the job-id sequence) ----------------------------
    def load_state(self) -> dict:
        if not self._docs.exists("server.json"):
            return {"next_seq": 0}
        try:
            return self._docs.read("server.json", kind="serve-state")
        except PersistError:
            # recoverable: the job records carry their own seq numbers
            return {"next_seq": 0}

    def save_state(self, state: dict) -> None:
        self._docs.write("server.json", state, kind="serve-state")

    # -- results (the content-addressed cache) -------------------------
    def get_result(self, fingerprint: str) -> dict | None:
        """The cached result document for *fingerprint*, or ``None``.

        The document carries ``kind``, ``verdict``, and the canonical
        body under ``result``.  A corrupt entry (both snapshots
        unusable) reads as a miss — the job simply recomputes and
        rewrites it; the cache can lose entries, never serve bad ones.
        """
        name = f"{fingerprint}.json"
        if not self._results.exists(name):
            return None
        try:
            return self._results.read(name, kind="result")
        except PersistError:
            obs.add("serve.cache.corrupt", 1)
            return None

    def put_result(
        self,
        fingerprint: str,
        *,
        kind: str,
        label: str,
        spec_fingerprints: list[str],
        body: dict,
        verdict: str | None,
    ) -> None:
        """Cache a *complete* result and index it (idempotent)."""
        self._results.write(
            f"{fingerprint}.json",
            {
                "kind": kind,
                "fingerprint": fingerprint,
                "verdict": verdict,
                "result": body,
            },
            kind="result",
        )
        index = self.index()
        index["entries"][fingerprint] = {
            "kind": kind,
            "label": label,
            "verdict": verdict,
            "specs": sorted(spec_fingerprints),
        }
        self._docs.write("index.json", index, kind="serve-index")

    def index(self) -> dict:
        """The artifact-graph index body (fresh empty one when absent)."""
        if not self._docs.exists("index.json"):
            return {"kind": "serve-index", "schema": INDEX_SCHEMA,
                    "entries": {}}
        try:
            body = self._docs.read("index.json", kind="serve-index")
        except PersistError:
            # the index is a rebuildable cache; a torn one starts empty
            return {"kind": "serve-index", "schema": INDEX_SCHEMA,
                    "entries": {}}
        if body.get("schema") != INDEX_SCHEMA:
            raise PersistError(
                f"serve index has unsupported schema {body.get('schema')!r}"
            )
        return body

    def entries_for_spec(self, spec_fingerprint: str) -> dict[str, dict]:
        """Index entries whose inputs include this spec fingerprint."""
        return {
            fp: entry
            for fp, entry in self.index()["entries"].items()
            if spec_fingerprint in entry.get("specs", ())
        }

    # -- job records (the crash journal) -------------------------------
    def save_job(self, record: dict) -> None:
        self._jobs.write(
            f"{record['job_id']}.json", record, kind="job-record"
        )

    def load_job(self, job_id: str) -> dict | None:
        name = f"{job_id}.json"
        if not self._jobs.exists(name):
            return None
        return self._jobs.read(name, kind="job-record")

    def load_jobs(self) -> list[dict]:
        """Every job record, oldest submission first."""
        records = []
        for name in self._jobs.names():
            try:
                records.append(self._jobs.read(name, kind="job-record"))
            except PersistError:
                continue
        records.sort(key=lambda r: r.get("seq", 0))
        return records

    def recoverable_jobs(self) -> list[dict]:
        """Records a restarted server must re-enqueue (oldest first)."""
        return [
            r for r in self.load_jobs()
            if r.get("state") in RECOVERABLE_STATES
        ]

    # -- checkpoints (resume-after-crash for solve jobs) ----------------
    def checkpoint_path(self, fingerprint: str) -> str:
        return self._checkpoints.path(f"{fingerprint}.json")

    def save_job_checkpoint(self, fingerprint: str, ckpt: Checkpoint) -> str:
        return save_checkpoint(self.checkpoint_path(fingerprint), ckpt)

    def load_job_checkpoint(self, fingerprint: str) -> Checkpoint | None:
        path = self.checkpoint_path(fingerprint)
        if not (os.path.exists(path) or os.path.exists(path + ".prev")):
            return None
        try:
            return load_checkpoint(path)
        except PersistError:
            # an unusable checkpoint only costs a from-scratch re-run
            return None

    def drop_job_checkpoint(self, fingerprint: str) -> None:
        self._checkpoints.remove(f"{fingerprint}.json")

    # -- maintenance ---------------------------------------------------
    def gc(self) -> dict[str, Any]:
        """Run :meth:`~repro.persist.Store.gc` over the whole tree.

        The root store's walk is recursive, so one pass covers results,
        jobs, checkpoints, the index, and the ledger alike.
        """
        return self._docs.gc()
