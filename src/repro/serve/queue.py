"""Bounded admission queue: priorities, backpressure, load shedding.

Admission policy (deterministic, so the overload tests can pin exact
outcomes):

* Space available → **accept** (``serve.queue.accepted``).
* Queue full and the newcomer's priority is strictly higher than the
  lowest priority currently queued → **shed** that lowest-priority job
  (the youngest among ties — it has waited least) and accept the
  newcomer (``serve.queue.shed``).  The shed job is returned to the
  caller, who owes its client a structured answer.
* Queue full otherwise → **reject** with a ``retry_after_s`` hint
  derived from the queue depth (``serve.queue.rejected``) — the
  429-style backpressure path.

The queue itself is synchronous and single-lock-free (the asyncio server
only touches it from the event-loop thread); ordering is by
``(-priority, seq)``, so equal priorities are FIFO and the whole
discipline is a pure function of the submission sequence.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

from .. import obs

__all__ = ["AdmissionQueue", "Admission"]

#: Seconds of retry-after hint per queued job (deterministic, depth-based).
RETRY_AFTER_PER_JOB_S = 0.05


@dataclass(frozen=True)
class Admission:
    """The outcome of one :meth:`AdmissionQueue.offer`.

    ``decision`` is ``"accepted"`` or ``"rejected"``; ``shed`` carries
    the job evicted to make room (only ever set on an acceptance);
    ``retry_after_s`` is the backpressure hint (only on a rejection).
    """

    decision: str
    shed: Any = None
    retry_after_s: float | None = None

    @property
    def accepted(self) -> bool:
        return self.decision == "accepted"


class AdmissionQueue:
    """A bounded priority queue with deterministic shedding."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._heap: list[tuple[int, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def depth(self) -> int:
        return len(self._heap)

    def retry_after(self) -> float:
        """The deterministic backpressure hint at the current depth."""
        return round(RETRY_AFTER_PER_JOB_S * (len(self._heap) + 1), 3)

    def offer(self, job: Any, *, priority: int = 0) -> Admission:
        """Admit, shed-and-admit, or reject *job* (see module docstring)."""
        shed = None
        if len(self._heap) >= self.capacity:
            lowest = max(self._heap)  # max of (-priority, seq): lowest
            if -lowest[0] < priority:  # priority, youngest among ties
                self._heap.remove(lowest)
                heapq.heapify(self._heap)
                shed = lowest[2]
                obs.add("serve.queue.shed", 1)
            else:
                obs.add("serve.queue.rejected", 1)
                return Admission(
                    "rejected", retry_after_s=self.retry_after()
                )
        heapq.heappush(self._heap, (-priority, self._seq, job))
        self._seq += 1
        obs.add("serve.queue.accepted", 1)
        obs.gauge("serve.queue.depth", len(self._heap))
        return Admission("accepted", shed=shed)

    def push(self, job: Any, *, priority: int = 0) -> None:
        """Enqueue unconditionally, even past capacity.

        The restart-recovery path: these jobs were already admitted by a
        previous server life, so the admission bound must not apply to
        them a second time (an accepted job is never lost).
        """
        heapq.heappush(self._heap, (-priority, self._seq, job))
        self._seq += 1
        obs.gauge("serve.queue.depth", len(self._heap))

    def pop(self) -> Any | None:
        """The highest-priority (FIFO within priority) job, or ``None``."""
        if not self._heap:
            return None
        _, _, job = heapq.heappop(self._heap)
        obs.gauge("serve.queue.depth", len(self._heap))
        return job

    def drain(self) -> list[Any]:
        """Remove and return every queued job in pop order."""
        out = []
        while self._heap:
            job = self.pop()
            if job is not None:
                out.append(job)
        return out
