"""The derivation server: asyncio HTTP front, threaded supervised back.

``DerivationServer`` turns the library's batch entry points into a
crash-tolerant service.  One asyncio event loop owns all bookkeeping
(admission, dedup, job records); jobs execute on worker threads via
:func:`asyncio.to_thread` under :class:`~repro.serve.workers.
WorkerSupervisor`; every state transition is persisted through
:class:`~repro.serve.store_index.ResultStore`, so a killed server restarts
into the same job set and resumes solves from their checkpoints.

Protocol (JSON over HTTP/1.1, ``Connection: close``)::

    POST /jobs          submit a JobRequest document
                          200  cache hit: job record + result body
                          202  accepted (or joined to an in-flight twin)
                          429  queue full: {"retry_after_s": ...}
                          503  server draining
    GET  /jobs          all job summaries
    GET  /jobs/<id>     record + progress tail (+ result when done);
                          ?wait=1[&timeout_s=N] long-polls for a
                          terminal state
    GET  /results/<fp>  a cached result document by fingerprint
    GET  /index[?spec=<fp>]  the artifact-graph index
    GET  /healthz       {"status": "ok" | "degraded" | "draining", ...}
    GET  /metrics       the server collector's counters and gauges
    POST /gc            run store garbage collection
    POST /shutdown      begin the drain (same path as SIGTERM)

**Single-flight dedup**: a submission whose fingerprint matches a queued
or running job returns that job's id (``serve.dedup.joined``) instead of
computing twice; a fingerprint with a cached complete result returns it
immediately (``serve.cache.hit``) without touching the queue.

**Drain** (SIGTERM, SIGINT, or ``POST /shutdown``): admission closes
(503), queued jobs stay persisted as ``queued``, running jobs are
interrupted at their next charge boundary and checkpointed as
``interrupted``, the ledger is flushed, and the process exits cleanly.
A restarted server re-enqueues all of them (``serve.jobs.recovered``)
past the admission bound — an accepted job is never lost.
"""

from __future__ import annotations

import asyncio
import collections
import json
import signal
import threading
import time
from typing import Any, Callable
from urllib.parse import parse_qs, urlsplit

from .. import obs
from ..errors import ReproError, ServeError
from ..obs.core import ThreadSafeCollector
from ..obs.ledger import append_run, flatten_work
from ..obs.progress import ProgressReporter, set_reporter
from ..persist import InterruptController
from .jobs import JobRequest
from .queue import AdmissionQueue
from .store_index import ResultStore
from .workers import DEFAULT_JOB_RETRY, DRAIN_REASON, WorkerSupervisor

__all__ = ["DerivationServer", "TERMINAL_STATES"]

#: Job states after which a record never changes again.
TERMINAL_STATES = ("done", "failed", "shed", "interrupted")

#: Progress events retained per job (a bounded tail, newest last).
PROGRESS_TAIL = 256

#: Default long-poll ceiling for ``GET /jobs/<id>?wait=1``.
WAIT_TIMEOUT_S = 30.0


class _Tail:
    """A line-buffered text sink keeping the last N JSONL events.

    Fed by the job's :class:`~repro.obs.progress.ProgressReporter` from
    its worker thread; read (as parsed objects) by the event loop for
    ``GET /jobs/<id>``.  Append/snapshot are each a single deque
    operation, safe under the GIL.
    """

    def __init__(self, maxlen: int = PROGRESS_TAIL) -> None:
        self.lines: collections.deque[str] = collections.deque(maxlen=maxlen)
        self._partial = ""

    def write(self, text: str) -> None:
        self._partial += text
        while "\n" in self._partial:
            line, self._partial = self._partial.split("\n", 1)
            if line:
                self.lines.append(line)

    def flush(self) -> None:  # TextIO duck-typing
        pass

    def events(self) -> list[dict]:
        out = []
        for line in list(self.lines):
            try:
                out.append(json.loads(line))
            except ValueError:
                continue
        return out


class DerivationServer:
    """Quotient derivation as a service (see module docstring)."""

    def __init__(
        self,
        root: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        capacity: int = 16,
        workers: int = 2,
        respawn_budget: int = 16,
        retry=DEFAULT_JOB_RETRY,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        self.store = ResultStore(root)
        self.host = host
        self.port = port
        self.queue = AdmissionQueue(capacity)
        self.supervisor = WorkerSupervisor(
            respawn_budget=respawn_budget, retry=retry, sleep=sleep,
            clock=clock,
        )
        self.workers = workers
        self.drain = InterruptController(clock=clock)
        self.draining = False
        self._seq = int(self.store.load_state().get("next_seq", 0))
        self._records: dict[str, dict] = {}
        self._requests: dict[str, JobRequest] = {}
        self._inflight: dict[str, str] = {}
        self._done_events: dict[str, asyncio.Event] = {}
        self._progress: dict[str, _Tail] = {}
        # serializes read-modify-write documents (index, ledger) and the
        # whole execution when the supervisor has degraded
        self._store_lock = threading.Lock()
        self._serial = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self.collector: ThreadSafeCollector | None = None

    # ------------------------------------------------------------------
    # job bookkeeping (event-loop thread only)
    # ------------------------------------------------------------------
    def _new_job(
        self, request: JobRequest, fingerprint: str, *, state: str, cache: str
    ) -> dict:
        job_id = f"j{self._seq}"
        record = {
            "schema": 1,
            "job_id": job_id,
            "seq": self._seq,
            "kind": request.kind,
            "label": request.label,
            "priority": request.priority,
            "fingerprint": fingerprint,
            "state": state,
            "cache": cache,
            "outcome": None,
            "verdict": None,
            "error": None,
            "attempts": 0,
            "worker_deaths": 0,
            "resumed": False,
            "degradations": [],
            "request": request.to_json_dict(),
        }
        self._seq += 1
        self._records[job_id] = record
        self._requests[job_id] = request
        self._done_events[job_id] = asyncio.Event()
        self._progress[job_id] = _Tail()
        self.store.save_state({"next_seq": self._seq})
        self.store.save_job(record)
        return record

    def _ledger_job(self, record: dict, work: dict | None = None) -> None:
        with self._store_lock:
            append_run(
                self.store.ledger_path,
                kind="served",
                fingerprint=record["fingerprint"],
                label=record["label"] or record["job_id"],
                outcome=record["outcome"] or "failed",
                verdict=record["verdict"],
                work=flatten_work(work or {}),
                artifacts=(
                    {"result": f"results/{record['fingerprint']}.json"}
                    if record["state"] == "done"
                    else {}
                ),
            )

    def _submit(self, doc: Any) -> tuple[int, dict]:
        request = JobRequest.from_json_dict(doc)
        try:
            fingerprint = request.fingerprint()
        except ServeError:
            raise
        except ReproError as exc:
            raise ServeError(f"unservable payload: {exc}") from exc
        obs.add("serve.jobs.submitted", 1)
        if self.draining:
            raise ServeError(
                "server is draining; resubmit after restart", status=503
            )
        cached = self.store.get_result(fingerprint)
        if cached is not None:
            obs.add("serve.cache.hit", 1)
            record = self._new_job(
                request, fingerprint, state="done", cache="hit"
            )
            record["outcome"] = "complete"
            record["verdict"] = cached.get("verdict")
            self.store.save_job(record)
            self._ledger_job(record)
            self._done_events[record["job_id"]].set()
            return 200, {"job": record, "result": cached.get("result")}
        if fingerprint in self._inflight:
            obs.add("serve.dedup.joined", 1)
            primary = self._records[self._inflight[fingerprint]]
            return 202, {"job": primary, "joined": True}
        obs.add("serve.cache.miss", 1)
        record = self._new_job(
            request, fingerprint, state="queued", cache="miss"
        )
        admission = self.queue.offer(record["job_id"],
                                     priority=request.priority)
        if not admission.accepted:
            record["state"] = "failed"
            record["outcome"] = "failed"
            record["error"] = "rejected: queue full"
            self.store.save_job(record)
            self._done_events[record["job_id"]].set()
            raise ServeError(
                f"queue full (capacity {self.queue.capacity}); retry in "
                f"{admission.retry_after_s}s",
                status=429,
            )
        if admission.shed is not None:
            shed = self._records[admission.shed]
            shed["state"] = "shed"
            shed["outcome"] = "failed"
            shed["error"] = (
                "shed by a higher-priority submission under load; resubmit"
            )
            self.store.save_job(shed)
            self._ledger_job(shed)
            self._inflight.pop(shed["fingerprint"], None)
            self._done_events[shed["job_id"]].set()
        self._inflight[fingerprint] = record["job_id"]
        if self._wake is not None:
            self._wake.set()
        return 202, {"job": record}

    def _recover(self) -> None:
        """Re-enqueue every job a previous server life left unfinished."""
        for record in self.store.recoverable_jobs():
            try:
                request = JobRequest.from_json_dict(record["request"])
            except (ServeError, KeyError):
                record["state"] = "failed"
                record["outcome"] = "failed"
                record["error"] = "unrecoverable job record"
                self.store.save_job(record)
                continue
            job_id = record["job_id"]
            record["state"] = "queued"
            self._seq = max(self._seq, int(record.get("seq", 0)) + 1)
            self._records[job_id] = record
            self._requests[job_id] = request
            self._done_events[job_id] = asyncio.Event()
            self._progress[job_id] = _Tail()
            self.store.save_job(record)
            fingerprint = record["fingerprint"]
            if fingerprint not in self._inflight:
                self._inflight[fingerprint] = job_id
            # past the admission bound: these were already admitted once
            self.queue.push(job_id, priority=record.get("priority", 0))
            obs.add("serve.jobs.recovered", 1)
        self.store.save_state({"next_seq": self._seq})

    # ------------------------------------------------------------------
    # execution (worker threads)
    # ------------------------------------------------------------------
    def _run_one(self, job_id: str) -> None:
        record = self._records[job_id]
        request = self._requests[job_id]
        record["state"] = "running"
        self.store.save_job(record)
        reporter = ProgressReporter(jsonl=self._progress[job_id],
                                    interval_s=0.2)
        previous = set_reporter(reporter)
        try:
            if self.supervisor.degraded:
                with self._serial:
                    outcome = self.supervisor.run_job(
                        request, self.store,
                        fingerprint=record["fingerprint"], drain=self.drain,
                    )
            else:
                outcome = self.supervisor.run_job(
                    request, self.store,
                    fingerprint=record["fingerprint"], drain=self.drain,
                )
        finally:
            set_reporter(previous)
        if outcome.state == "done":
            # cache the result BEFORE the record turns terminal: pollers
            # key off "state", and a done job must always have its body
            with self._store_lock:
                self.store.put_result(
                    record["fingerprint"],
                    kind=request.kind,
                    label=request.label,
                    spec_fingerprints=_payload_spec_fingerprints(request),
                    body=outcome.body,
                    verdict=outcome.verdict,
                )
        record["outcome"] = outcome.outcome
        record["verdict"] = outcome.verdict
        record["error"] = outcome.error
        record["attempts"] = outcome.attempts
        record["worker_deaths"] = outcome.worker_deaths
        record["resumed"] = outcome.resumed
        record["degradations"] = outcome.degradations
        record["state"] = outcome.state
        reporter.finish(outcome.outcome)
        self.store.save_job(record)
        if outcome.state in ("done", "failed"):
            self._ledger_job(record, outcome.counters)
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._finalize, job_id)

    def _finalize(self, job_id: str) -> None:
        record = self._records[job_id]
        if record["state"] in ("done", "failed", "shed"):
            if self._inflight.get(record["fingerprint"]) == job_id:
                del self._inflight[record["fingerprint"]]
        self._done_events[job_id].set()

    async def _worker(self) -> None:
        while not self.draining:
            job_id = self.queue.pop()
            if job_id is None:
                assert self._wake is not None
                self._wake.clear()
                await self._wake.wait()
                continue
            await asyncio.to_thread(self._run_one, job_id)

    # ------------------------------------------------------------------
    # drain
    # ------------------------------------------------------------------
    def initiate_drain(self) -> None:
        """Stop admitting, interrupt running jobs, let :meth:`run` exit."""
        if self.draining:
            return
        self.draining = True
        obs.event("serve.drain", queued=self.queue.depth)
        self.drain.request(DRAIN_REASON)
        if self._wake is not None:
            self._wake.set()
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        status: int | None = None
        doc: dict = {"error": "internal error"}
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            status = 500
            method, target = parts[0], parts[1]
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    length = int(value.strip())
            body = await reader.readexactly(length) if length else b""
            obs.add("serve.http.requests", 1)
            try:
                status, doc = await self._route(method, target, body)
            except ServeError as exc:
                status, doc = exc.status, {"error": str(exc)}
                if exc.status == 429:
                    doc["retry_after_s"] = self.queue.retry_after()
            except ReproError as exc:
                status, doc = 400, {"error": str(exc)}
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            status = None
        finally:
            try:
                if status is None:
                    writer.close()
                    return
                payload = json.dumps(doc, indent=2, sort_keys=True)
                reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                          404: "Not Found", 429: "Too Many Requests",
                          503: "Service Unavailable"}.get(status, "Error")
                writer.write(
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(payload.encode('utf-8'))}\r\n"
                    f"Connection: close\r\n\r\n{payload}".encode("utf-8")
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            writer.close()

    async def _route(self, method: str, target: str,
                     body: bytes) -> tuple[int, dict]:
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        if method == "POST" and path == "/jobs":
            try:
                doc = json.loads(body.decode("utf-8"))
            except ValueError as exc:
                raise ServeError(f"request body is not JSON: {exc}") from exc
            return self._submit(doc)
        if method == "GET" and path.startswith("/jobs/"):
            return await self._job_status(path[len("/jobs/"):], query)
        if method == "GET" and path == "/jobs":
            return 200, {"jobs": [
                {k: r[k] for k in ("job_id", "seq", "kind", "label", "state",
                                   "cache", "outcome", "verdict",
                                   "fingerprint")}
                for r in sorted(self._records.values(),
                                key=lambda r: r["seq"])
            ]}
        if method == "GET" and path.startswith("/results/"):
            doc = self.store.get_result(path[len("/results/"):])
            if doc is None:
                raise ServeError("no such result", status=404)
            return 200, doc
        if method == "GET" and path == "/index":
            if "spec" in query:
                return 200, {
                    "entries": self.store.entries_for_spec(query["spec"])
                }
            return 200, self.store.index()
        if method == "GET" and path == "/healthz":
            return 200, self._health()
        if method == "GET" and path == "/metrics":
            if self.collector is None:
                return 200, {"counters": {}, "gauges": {}}
            snap = self.collector.snapshot()
            return 200, {"counters": snap.counters, "gauges": snap.gauges}
        if method == "POST" and path == "/gc":
            with self._store_lock:
                return 200, self.store.gc()
        if method == "POST" and path == "/shutdown":
            self.initiate_drain()
            return 202, {"draining": True}
        raise ServeError(f"no route for {method} {path}", status=404)

    async def _job_status(self, job_id: str,
                          query: dict) -> tuple[int, dict]:
        record = self._records.get(job_id)
        if record is None:
            # a job from a previous server life, known only on disk
            record = self.store.load_job(job_id)
            if record is None:
                raise ServeError(f"no such job {job_id!r}", status=404)
            doc = {"job": record, "progress": []}
            if record.get("state") == "done":
                cached = self.store.get_result(record["fingerprint"])
                if cached is not None:
                    doc["result"] = cached.get("result")
            return 200, doc
        if query.get("wait") and record["state"] not in TERMINAL_STATES:
            try:
                timeout = float(query.get("timeout_s", WAIT_TIMEOUT_S))
            except ValueError as exc:
                raise ServeError(f"bad timeout_s: {exc}") from exc
            try:
                await asyncio.wait_for(
                    self._done_events[job_id].wait(), timeout
                )
            except asyncio.TimeoutError:
                pass
        doc: dict[str, Any] = {
            "job": record,
            "progress": self._progress[job_id].events(),
        }
        if record["state"] == "done":
            cached = self.store.get_result(record["fingerprint"])
            if cached is not None:
                doc["result"] = cached.get("result")
        return 200, doc

    def _health(self) -> dict:
        status = "ok"
        if self.supervisor.degraded:
            status = "degraded"
        if self.draining:
            status = "draining"
        return {
            "status": status,
            "queue_depth": self.queue.depth,
            "inflight": len(self._inflight),
            "respawn_budget": self.supervisor.respawn_budget,
            "worker_deaths": self.supervisor.worker_deaths,
            "jobs": len(self._records),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(
        self, *, ready: Callable[["DerivationServer"], None] | None = None
    ) -> None:
        """Serve until drained (SIGTERM/SIGINT/``POST /shutdown``).

        *ready* is called once the socket is bound and recovery is done
        (the CLI prints the address; tests capture the port).
        """
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        installed_collector = False
        if not obs.current_collector().recording:
            self.collector = ThreadSafeCollector()
            obs.set_collector(self.collector)
            installed_collector = True
        else:
            current = obs.current_collector()
            self.collector = current if isinstance(
                current, ThreadSafeCollector) else None
        self._recover()
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        self.port = server.sockets[0].getsockname()[1]
        handled_signals = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(sig, self.initiate_drain)
                handled_signals.append(sig)
            except (NotImplementedError, RuntimeError, ValueError):
                pass
        workers = [
            asyncio.create_task(self._worker()) for _ in range(self.workers)
        ]
        if self.queue.depth:
            self._wake.set()
        try:
            if ready is not None:
                ready(self)
            await self._stopped.wait()
            await asyncio.gather(*workers, return_exceptions=True)
        finally:
            for sig in handled_signals:
                self._loop.remove_signal_handler(sig)
            server.close()
            await server.wait_closed()
            if installed_collector:
                obs.set_collector(obs.NULL)


def _payload_spec_fingerprints(request: JobRequest) -> list[str]:
    """Name-insensitive fingerprints of every spec in the payload."""
    from ..io.json_codec import spec_from_dict
    from ..persist.checkpoint import spec_fingerprint

    fingerprints = []
    for key in ("service", "component", "converter"):
        doc = request.payload.get(key)
        if isinstance(doc, dict):
            try:
                fingerprints.append(spec_fingerprint(spec_from_dict(doc)))
            except ReproError:
                continue
    for key in ("components", "specs"):
        docs = request.payload.get(key)
        if isinstance(docs, list):
            for doc in docs:
                if isinstance(doc, dict):
                    try:
                        fingerprints.append(
                            spec_fingerprint(spec_from_dict(doc))
                        )
                    except ReproError:
                        continue
    return sorted(set(fingerprints))
