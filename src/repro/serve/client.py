"""A stdlib client for :class:`~repro.serve.app.DerivationServer`.

Thin and synchronous (``http.client``): the CLI's ``submit`` / ``status``
subcommands and the CI smoke tests talk to the server through this.  All
methods return the decoded JSON document; HTTP error statuses raise
:class:`~repro.errors.ServeError` with the server's message and status,
**except** 429 on :meth:`submit` — backpressure is an expected answer
under load, so it comes back as a normal ``(status, doc)`` pair for the
caller to honor ``retry_after_s``.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable

from ..errors import ServeError
from .app import TERMINAL_STATES

__all__ = ["ServeClient"]


class ServeClient:
    """JSON-over-HTTP access to one derivation server."""

    def __init__(
        self, host: str, port: int, *, timeout_s: float = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def call(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One request/response exchange; returns ``(status, document)``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout_s
        )
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        try:
            doc = json.loads(text) if text else {}
        except ValueError as exc:
            raise ServeError(
                f"server returned non-JSON ({response.status}): {text[:200]}"
            ) from exc
        return response.status, doc

    def _checked(self, method: str, path: str,
                 body: dict | None = None) -> dict:
        status, doc = self.call(method, path, body)
        if status >= 400:
            raise ServeError(
                doc.get("error", f"server error {status}"), status=status
            )
        return doc

    # ------------------------------------------------------------------
    def submit(self, request_doc: dict) -> tuple[int, dict]:
        """Submit a job request document.

        Returns ``(status, doc)``: 200 carries ``result`` (cache hit),
        202 an accepted/joined job, 429 a ``retry_after_s`` hint.  Other
        error statuses raise.
        """
        status, doc = self.call("POST", "/jobs", request_doc)
        if status >= 400 and status != 429:
            raise ServeError(
                doc.get("error", f"server error {status}"), status=status
            )
        return status, doc

    def job(self, job_id: str, *, wait: bool = False,
            timeout_s: float | None = None) -> dict:
        path = f"/jobs/{job_id}"
        if wait:
            path += "?wait=1"
            if timeout_s is not None:
                path += f"&timeout_s={timeout_s}"
        return self._checked("GET", path)

    def wait(
        self,
        job_id: str,
        *,
        timeout_s: float = 120.0,
        poll_s: float = 0.1,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> dict:
        """Block until the job reaches a terminal state (long-polling)."""
        deadline = clock() + timeout_s
        while True:
            remaining = deadline - clock()
            if remaining <= 0:
                raise ServeError(
                    f"job {job_id} did not finish within {timeout_s}s",
                    status=504,
                )
            doc = self.job(
                job_id, wait=True, timeout_s=min(remaining, 10.0)
            )
            if doc["job"]["state"] in TERMINAL_STATES:
                return doc
            sleep(poll_s)

    def jobs(self) -> dict:
        return self._checked("GET", "/jobs")

    def result(self, fingerprint: str) -> dict:
        return self._checked("GET", f"/results/{fingerprint}")

    def index(self, spec: str | None = None) -> dict:
        path = "/index" if spec is None else f"/index?spec={spec}"
        return self._checked("GET", path)

    def health(self) -> dict:
        return self._checked("GET", "/healthz")

    def metrics(self) -> dict:
        return self._checked("GET", "/metrics")

    def gc(self) -> dict:
        return self._checked("POST", "/gc")

    def shutdown(self) -> dict:
        return self._checked("POST", "/shutdown")
