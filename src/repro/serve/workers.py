"""Supervised job execution: retry, resume, respawn budget, degradation.

:func:`WorkerSupervisor.run_job` is the synchronous heart of the server
(the asyncio layer calls it on a worker thread).  It wraps the pure
:func:`~repro.serve.jobs.execute_job` in the full robustness ladder:

1. **Transient failures** (a real :class:`OSError`, or an injected
   ``serve.job`` *raise* fault) are retried under a
   :class:`~repro.chaos.RetryPolicy` with deterministic seeded backoff —
   the same machinery the persist store uses.
2. **Worker death and wedging** (injected ``serve.job`` *kill* / *hang*
   faults, or a genuine crash between attempts) interrupt the solve at a
   deterministic charge boundary; the checkpoint the solver hands back is
   persisted under the job's fingerprint and the next attempt *resumes*
   instead of restarting.  Each death spends one unit of the shared
   respawn budget.
3. **Respawn-budget exhaustion** flips the supervisor into degraded
   mode: no further faults are consulted, jobs drain in-process
   sequentially, and every affected job carries a
   :class:`~repro.quotient.parallel.DegradedExecution` record — the
   answer is still exact, only the execution story changed.
4. **Budgets and deadlines** surface as ``partial-budget`` /
   ``partial-interrupt`` outcomes with a persisted checkpoint, so a
   resubmission (or a restarted server) picks up where the job stopped.

The chaos *kill* simulation deserves a note: a real killed worker leaves
its last durable checkpoint behind; here the kill is modeled as a
deterministic :class:`~repro.persist.InterruptController` ``at_charge``
interrupt — the checkpoint *is* the solver's charge-boundary snapshot,
and the resume differential machinery (``tests/test_resume_differential``)
guarantees the resumed run is byte-identical to an uninterrupted one.
That is exactly the contract ``tests/test_serve_differential.py`` pins
end to end.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Callable

from .. import chaos, obs
from ..chaos import RetryPolicy
from ..errors import BudgetExceeded, InterruptRequested, ReproError
from ..persist import InterruptController
from ..quotient.parallel import DegradedExecution
from .jobs import JobRequest, execute_job
from .store_index import ResultStore

__all__ = ["DEFAULT_JOB_RETRY", "JobOutcome", "WorkerSupervisor"]

#: Retry policy for transiently failing job attempts.
DEFAULT_JOB_RETRY = RetryPolicy(
    max_attempts=4, base_delay_s=0.01, max_delay_s=0.5, seed=17
)

#: Upper bound on the charge at which a simulated kill/hang fires.  Small
#: enough that typical jobs have an interior kill point, large enough to
#: vary; a draw beyond the job's actual charge count simply "misses"
#: (the worker died after finishing — nothing to recover).  Overridable
#: with ``REPRO_KILL_CHARGE_SPAN`` (span 1 pins the kill to the first
#: charge boundary, so it always lands — the CI smoke uses this).
KILL_CHARGE_SPAN = 31


def _default_kill_charge_span() -> int:
    raw = os.environ.get("REPRO_KILL_CHARGE_SPAN")
    if not raw:
        return KILL_CHARGE_SPAN
    try:
        span = int(raw)
    except ValueError:
        raise ReproError(
            f"REPRO_KILL_CHARGE_SPAN must be an integer, got {raw!r}"
        ) from None
    if span < 1:
        raise ReproError(
            f"REPRO_KILL_CHARGE_SPAN must be >= 1, got {span}"
        )
    return span

#: The interrupt reason used for server drain (SIGTERM); recognized by
#: the supervisor to park the job as recoverable instead of failing it.
DRAIN_REASON = "server drain"


@dataclass
class JobOutcome:
    """Everything the app layer needs to finalize one job."""

    state: str                      # done | failed | interrupted
    outcome: str                    # complete | partial-* | failed
    body: dict | None = None
    verdict: str | None = None
    counters: dict = field(default_factory=dict)
    degradations: list = field(default_factory=list)
    error: str | None = None
    attempts: int = 0
    worker_deaths: int = 0
    resumed: bool = False
    checkpointed: bool = False


class WorkerSupervisor:
    """Shared supervision state for all worker threads of one server.

    *respawn_budget* bounds how many simulated worker deaths the server
    absorbs before degrading to sequential in-process draining (mirrors
    ``REPRO_RESPAWN_BUDGET`` in the parallel kernel).  *sleep* and
    *clock* are injectable so tests run without real waiting.
    """

    def __init__(
        self,
        *,
        respawn_budget: int = 16,
        retry: RetryPolicy = DEFAULT_JOB_RETRY,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        kill_charge_span: int | None = None,
    ) -> None:
        if kill_charge_span is None:
            kill_charge_span = _default_kill_charge_span()
        if kill_charge_span < 1:
            raise ValueError(
                f"kill_charge_span must be >= 1, got {kill_charge_span!r}"
            )
        self.respawn_budget = respawn_budget
        self.retry = retry
        self.kill_charge_span = kill_charge_span
        self.degraded = False
        self.worker_deaths = 0
        self._sleep = sleep
        self._clock = clock
        self._fault_seq = 0

    # ------------------------------------------------------------------
    def _kill_charge(self, plan: chaos.ChaosPlan) -> int:
        """The deterministic charge boundary a simulated kill fires at."""
        n = self._fault_seq
        self._fault_seq += 1
        return 1 + random.Random(
            f"{plan.seed}|serve.job.charge|{n}"
        ).randrange(self.kill_charge_span)

    def _degrade(self, reason: str, deaths: int) -> DegradedExecution:
        self.degraded = True
        record = DegradedExecution(
            reason=reason, worker_deaths=deaths, pending_units=0
        )
        obs.event("serve.degraded", reason=reason)
        return record

    # ------------------------------------------------------------------
    def run_job(
        self,
        request: JobRequest,
        store: ResultStore,
        *,
        fingerprint: str | None = None,
        drain: InterruptController | None = None,
    ) -> JobOutcome:
        """Execute *request* to a terminal :class:`JobOutcome`.

        *drain* is an externally owned controller the server requests on
        SIGTERM; when its interrupt fires mid-job the outcome is
        ``interrupted`` (recoverable on restart) rather than ``failed``.
        The controller actually attached to the solve is always a fresh
        per-attempt one — *drain*'s pending request is forwarded into it
        so a drain requested between attempts still lands.
        """
        fp = fingerprint if fingerprint is not None else request.fingerprint()
        resume = (
            store.load_job_checkpoint(fp) if request.kind == "solve" else None
        )
        outcome = JobOutcome(state="failed", outcome="failed")
        outcome.resumed = resume is not None
        deaths = 0
        degradations: list[DegradedExecution] = []
        if self.degraded:
            degradations.append(
                DegradedExecution(
                    reason="serve worker pool degraded; draining in-process",
                    worker_deaths=self.worker_deaths,
                    pending_units=0,
                )
            )
        while True:
            outcome.attempts += 1
            fault = None
            if not self.degraded:
                state = chaos.active()
                fault = state.serve_job_fault() if state is not None else None
            at_charge = None
            if fault in ("kill", "hang"):
                at_charge = self._kill_charge(chaos.active().plan)
            controller = InterruptController(
                deadline_s=request.deadline_s,
                at_charge=at_charge,
                clock=self._clock,
            )
            if drain is not None and drain.requested:
                controller.request(DRAIN_REASON)
            first_call = [fault == "raise"]

            def attempt():
                if first_call[0]:
                    first_call[0] = False
                    raise OSError(
                        "chaos: injected transient serve worker failure"
                    )
                return execute_job(
                    request, interrupt=controller, resume_from=resume
                )

            try:
                result = self.retry.call(
                    attempt,
                    site=f"serve.job:{request.kind}",
                    sleep=self._sleep,
                    clock=self._clock,
                )
            except InterruptRequested as exc:
                ckpt = getattr(exc, "checkpoint", None)
                if ckpt is not None:
                    store.save_job_checkpoint(fp, ckpt)
                    outcome.checkpointed = True
                    resume = ckpt
                    outcome.resumed = True
                if exc.reason.startswith("test interrupt"):
                    # the simulated worker death: spend respawn budget,
                    # then retry the job resuming from the checkpoint
                    deaths += 1
                    self.worker_deaths += 1
                    obs.add("serve.worker.deaths", 1)
                    if self.respawn_budget <= 0:
                        degradations.append(self._degrade(
                            "serve worker respawn budget exhausted; "
                            "draining in-process",
                            deaths,
                        ))
                    else:
                        self.respawn_budget -= 1
                        obs.add("serve.worker.respawns", 1)
                    continue
                outcome.state = (
                    "interrupted" if exc.reason == DRAIN_REASON else "failed"
                )
                outcome.outcome = "partial-interrupt"
                outcome.error = str(exc)
                break
            except BudgetExceeded as exc:
                ckpt = getattr(exc, "checkpoint", None)
                if ckpt is not None:
                    store.save_job_checkpoint(fp, ckpt)
                    outcome.checkpointed = True
                outcome.outcome = "partial-budget"
                outcome.error = str(exc)
                break
            except (ReproError, OSError) as exc:
                outcome.error = str(exc)
                break
            # success
            store.drop_job_checkpoint(fp)
            outcome.state = "done"
            outcome.outcome = "complete"
            outcome.body = result.body
            outcome.verdict = result.verdict
            outcome.counters = dict(result.counters)
            degradations.extend(result.degradations)
            break
        outcome.worker_deaths = deaths
        outcome.degradations = [d.to_json_dict() for d in degradations]
        if outcome.state == "done":
            obs.add("serve.jobs.completed", 1)
            if outcome.resumed:
                obs.add("serve.jobs.resumed", 1)
        elif outcome.state == "interrupted":
            obs.add("serve.jobs.interrupted", 1)
        else:
            obs.add("serve.jobs.failed", 1)
        return outcome
