"""Layered-architecture modeling (Section 6).

Section 6 lifts the conversion problem into layered network architectures:
protocol stacks where each layer's peers communicate through the service
below.  This module provides a light formal model of such stacks —
enough to pose the Fig. 16-18 configurations as ordinary composition and
quotient problems:

* a :class:`LayerEntity` is a specification plus declared upper/lower
  interfaces (which events face the user above, which face the service
  below);
* a :class:`Stack` is a sequence of entities composed bottom-up, each
  entity synchronizing with the service below it on its lower interface;
* :func:`stack_composite` produces the resulting composite specification
  with only the top (user) interface and any declared open interfaces
  exposed.

The model deliberately ignores addressing, routing and management, exactly
as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..compose.nary import compose_many
from ..errors import CompositionError
from ..events import Alphabet
from ..spec.spec import Specification


@dataclass(frozen=True)
class LayerEntity:
    """One protocol entity in a stack.

    ``upper`` is its service interface to the layer above (or the end
    user); ``lower`` is its interface to the service below.  Together they
    must cover the spec's alphabet; events in neither set are peer-to-peer
    events expected to be matched by the transmission substrate.
    """

    spec: Specification
    upper: Alphabet
    lower: Alphabet

    def __post_init__(self) -> None:
        upper = Alphabet(self.upper)
        lower = Alphabet(self.lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "lower", lower)
        overlap = upper & lower
        if overlap:
            raise CompositionError(
                f"{self.spec.name}: upper and lower interfaces overlap on "
                f"{overlap.sorted()}"
            )
        outside = (upper | lower) - self.spec.alphabet
        if outside:
            raise CompositionError(
                f"{self.spec.name}: interface declares events not in the "
                f"alphabet: {outside.sorted()}"
            )


@dataclass(frozen=True)
class Stack:
    """A one-host protocol stack: entities listed bottom (substrate) first.

    Each adjacent pair must share exactly the events of the lower entity's
    ``upper`` interface and the upper entity's ``lower`` interface (that is
    how layer N uses the layer N−1 service).
    """

    name: str
    entities: tuple[LayerEntity, ...]

    def validate(self) -> None:
        if not self.entities:
            raise CompositionError(f"stack {self.name!r} is empty")
        for below, above in zip(self.entities, self.entities[1:]):
            expected = Alphabet(below.upper)
            declared = Alphabet(above.lower)
            if expected != declared:
                raise CompositionError(
                    f"stack {self.name!r}: {below.spec.name}.upper "
                    f"{expected.sorted()} does not match "
                    f"{above.spec.name}.lower {declared.sorted()}"
                )
            shared = below.spec.alphabet & above.spec.alphabet
            if shared != expected:
                raise CompositionError(
                    f"stack {self.name!r}: {below.spec.name} and "
                    f"{above.spec.name} share {shared.sorted()} but the "
                    f"declared layer interface is {expected.sorted()}"
                )


def stack_composite(stack: Stack) -> Specification:
    """Compose a stack bottom-up into one specification.

    Layer interfaces synchronize and are hidden by the ``‖`` operator; the
    result's alphabet is the top entity's upper interface plus every
    entity's unmatched (peer/substrate) events.
    """
    stack.validate()
    return compose_many(
        [entity.spec for entity in stack.entities], name=stack.name
    )


def end_to_end_system(
    left: Stack | Specification,
    substrate: Specification,
    right: Stack | Specification,
    *,
    name: str | None = None,
) -> Specification:
    """Two stacks joined by a transmission substrate.

    *left* and *right* are host stacks (or pre-composed specs); *substrate*
    is the medium carrying their peer events (a channel, a network service,
    an internetwork service...).  Shared events synchronize pairwise as
    usual.
    """
    left_spec = stack_composite(left) if isinstance(left, Stack) else left
    right_spec = stack_composite(right) if isinstance(right, Stack) else right
    return compose_many(
        [left_spec, substrate, right_spec],
        name=name
        if name is not None
        else f"{left_spec.name}--{substrate.name}--{right_spec.name}",
    )
