"""Gateway constructions of Section 6 (Figs. 16-18).

Three architectural options for interconnecting heterogeneous networks are
modeled concretely with the paper's own protocols:

* **Fig. 16 — pass-through concatenation**: connect the two transport
  services back-to-back with a simple relay entity.  Data flows, but
  *end-to-end synchronization is lost*: the A-side connection completes as
  soon as the relay holds the data, so the A-side user can run ahead of
  actual delivery (the "orderly close" anomaly).  The library demonstrates
  this as a machine-checked fact: the concatenated system satisfies a
  buffered/at-least-once style service but **not** the end-to-end
  alternating service.
* **Fig. 17 — symmetric transport-level conversion**: replace the facing
  peers with a converter between the two (unreliable) paths.  This is
  exactly the Section 5 symmetric configuration, posed through the
  architecture API.
* **Fig. 18 — asymmetric (co-located) conversion**: the converter sits
  with one endpoint; its path to the remote peer is unreliable, its path
  to the local entity is reliable.  This is the Section 5 co-located
  configuration, where a converter exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..compose.nary import compose_many
from ..protocols.abp import ab_receiver, ab_sender
from ..protocols.channels import ab_channel, ns_channel
from ..protocols.configs import ConversionScenario, colocated_scenario, symmetric_scenario
from ..protocols.nonseq import ns_receiver, ns_sender
from ..protocols.services import alternating_service
from ..spec.builder import SpecBuilder
from ..spec.ops import rename_events
from ..spec.spec import Specification

XFER = "__xfer__"
"""Internal handoff event of the pass-through entity."""


def pass_through_entity(
    *, receive: str, forward: str, name: str = "PT", capacity: int = 1
) -> Specification:
    """The Fig. 16 pass-through entity: a *capacity*-bounded relay.

    Receives on *receive* (e.g. the A-side transport's deliver event) and
    forwards on *forward* (e.g. the B-side transport's accept event).
    """
    builder = SpecBuilder(name).initial(0)
    for held in range(capacity):
        builder.external(held, receive, held + 1)
        builder.external(held + 1, forward, held)
    return builder.build()


def concatenated_system(*, capacity: int = 1) -> Specification:
    """Fig. 16: AB transport on side A, NS transport on side B, joined by a
    pass-through relay; user interface ``{acc, del}``.

    The relay fuses the AB receiver's ``del`` with the NS sender's ``acc``:
    both are renamed to distinct relay events so each synchronizes with one
    side of the pass-through entity, and the handoff is hidden.
    """
    recv_a = "xferA"  # AB receiver's delivery into the relay
    send_b = "xferB"  # relay's submission into the NS sender
    a1 = rename_events(ab_receiver(), {"del": recv_a})
    n0 = rename_events(ns_sender(), {"acc": send_b})
    relay = pass_through_entity(receive=recv_a, forward=send_b, capacity=capacity)
    return compose_many(
        [ab_sender(), ab_channel(), a1, relay, n0, ns_channel(), ns_receiver()],
        name="A0||Ach||A1||PT||N0||Nch||N1",
    )


@dataclass(frozen=True)
class GatewayFinding:
    """Machine-checked statement about a gateway construction."""

    title: str
    holds: bool
    detail: str


def concatenation_loses_end_to_end_sync() -> GatewayFinding:
    """Check the Fig. 16 anomaly: concatenation breaks strict alternation.

    The composite's user interface is ``{acc, del}``; the alternating
    service demands ``del`` before the next ``acc``, but the concatenated
    system lets the A-side complete (and accept again) while the message
    is still inside the relay or the B-side connection.
    """
    from ..satisfy.safety import satisfies_safety

    system = concatenated_system()
    result = satisfies_safety(system, alternating_service())
    trace = result.counterexample
    return GatewayFinding(
        title="pass-through concatenation vs end-to-end alternating service",
        holds=not result.holds,  # the *finding* is that satisfaction FAILS
        detail=(
            "concatenated system violates strict alternation with trace "
            + ("⟨" + ".".join(trace) + "⟩" if trace else "(none found?)")
        ),
    )


def transport_conversion_scenario() -> ConversionScenario:
    """Fig. 17: symmetric transport-level conversion (no converter exists)."""
    scenario = symmetric_scenario()
    return ConversionScenario(
        title="Fig. 17 transport-level conversion (symmetric placement)",
        service=scenario.service,
        components=scenario.components,
        composite=scenario.composite,
        interface=scenario.interface,
    )


def asymmetric_conversion_scenario() -> ConversionScenario:
    """Fig. 18: converter co-located with the B-side entity (reliable local
    path, unreliable remote path) — a converter exists."""
    scenario = colocated_scenario()
    return ConversionScenario(
        title="Fig. 18 asymmetric conversion (co-located placement)",
        service=scenario.service,
        components=scenario.components,
        composite=scenario.composite,
        interface=scenario.interface,
    )


def front_man_scenario() -> ConversionScenario:
    """Section 6's closing example: the converter as a server "front man".

    ``N1`` plays a B-architecture server; ``A0`` a remote A-architecture
    client reaching it over an unreliable internetwork path (``Ach``); the
    converter is co-located with the server and mediates.  Structurally the
    co-located configuration — provided under this name so the example
    reads like the prose.
    """
    scenario = colocated_scenario()
    return ConversionScenario(
        title="server front-man conversion (Section 6)",
        service=scenario.service,
        components=scenario.components,
        composite=scenario.composite,
        interface=scenario.interface,
    )
