"""Layered-architecture modeling and gateway constructions (Section 6)."""

from .gateway import (
    GatewayFinding,
    asymmetric_conversion_scenario,
    concatenated_system,
    concatenation_loses_end_to_end_sync,
    front_man_scenario,
    pass_through_entity,
    transport_conversion_scenario,
)
from .layers import LayerEntity, Stack, end_to_end_system, stack_composite

__all__ = [
    "GatewayFinding",
    "LayerEntity",
    "Stack",
    "asymmetric_conversion_scenario",
    "concatenated_system",
    "concatenation_loses_end_to_end_sync",
    "end_to_end_system",
    "front_man_scenario",
    "pass_through_entity",
    "stack_composite",
    "transport_conversion_scenario",
]
