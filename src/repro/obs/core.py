"""Core instrumentation primitives: spans, counters, gauges, collectors.

The observability layer is deliberately **zero-dependency and standalone**
(it imports nothing from the rest of :mod:`repro`), so every other module
can instrument itself without creating import cycles.

Design
------
A module-level *current collector* receives all telemetry.  The default is
:data:`NULL` — a :class:`NullCollector` whose every method is a no-op — so
instrumented code pays only a global read and an attribute check when
observability is off.  Install a :class:`MetricsCollector` (usually via the
:func:`use_collector` context manager) to record:

* **spans** — named, nested wall-time intervals with arbitrary attributes
  (``with span("safety_phase") as sp: ...; sp.set(states=n)``);
* **counters** — monotonically accumulated values (``add("pairs", 120)``);
* **gauges** — last-write-wins values (``gauge("c0.states", 14)``);
* **events** — timestamped point occurrences (``event("budget.exceeded",
  phase="safety")``), rendered as instant marks on the trace timeline.

:meth:`MetricsCollector.snapshot` freezes the recorded data into a
:class:`MetricsSnapshot`, which renders as a text tree, JSON, or the Chrome
``trace_event`` format (see :mod:`repro.obs.export`).

The clock is injectable (``MetricsCollector(clock=...)``) so exporter
output can be made deterministic in tests.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Union


@dataclass
class SpanRecord:
    """One recorded span: a named wall-time interval in the span tree.

    ``start``/``end`` are seconds relative to the collector's epoch
    (``end`` is ``None`` while the span is open).  ``parent`` is the index
    of the enclosing span in the collector's flat span list, or ``None``
    for roots.
    """

    index: int
    name: str
    parent: int | None
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start


@dataclass(frozen=True)
class EventRecord:
    """One instant event: a named point in time with attributes.

    ``ts`` is seconds relative to the collector's epoch, like span
    timestamps.  Events mark moments rather than intervals — a budget
    trip, a checkpoint write, a cooperative interrupt — and render as
    instant (``"ph": "i"``) marks on the Chrome-trace timeline.
    """

    name: str
    ts: float
    attrs: Mapping[str, Any] = field(default_factory=dict)


class NullCollector:
    """The default collector: records nothing, costs (almost) nothing."""

    recording = False

    def span_start(self, name: str, attrs: Mapping[str, Any] | None = None) -> int:
        return -1

    def span_end(self, index: int, attrs: Mapping[str, Any] | None = None) -> None:
        pass

    def add(self, name: str, value: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def event(self, name: str, attrs: Mapping[str, Any] | None = None) -> None:
        pass


NULL = NullCollector()

Collector = Union[NullCollector, "MetricsCollector"]


@dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable view of everything a collector recorded.

    ``spans`` is the flat span list in start order (tree structure via
    ``SpanRecord.parent``); ``counters`` and ``gauges`` are name → value
    maps.  Rendering methods delegate to :mod:`repro.obs.export`.
    """

    spans: tuple[SpanRecord, ...]
    counters: Mapping[str, float]
    gauges: Mapping[str, float]
    events: tuple[EventRecord, ...] = ()

    def children_of(self, parent: int | None) -> tuple[SpanRecord, ...]:
        return tuple(s for s in self.spans if s.parent == parent)

    def find(self, name: str) -> tuple[SpanRecord, ...]:
        """All spans with the given name, in start order."""
        return tuple(s for s in self.spans if s.name == name)

    def to_dict(self) -> dict[str, Any]:
        from .export import snapshot_to_dict

        return snapshot_to_dict(self)

    def to_json(self, *, indent: int | None = 2) -> str:
        from .export import snapshot_to_json

        return snapshot_to_json(self, indent=indent)

    def to_chrome_trace(self) -> dict[str, Any]:
        from .export import snapshot_to_chrome_trace

        return snapshot_to_chrome_trace(self)

    def render_text(self) -> str:
        from .export import render_text

        return render_text(self)

    def render_metrics_text(self) -> str:
        from .export import render_metrics_text

        return render_metrics_text(self)


class MetricsCollector:
    """A recording collector: span tree, counters, gauges.

    Not thread-safe: one collector observes one single-threaded run (the
    library itself is single-threaded).  ``ops`` counts every call received,
    so tests can bound the instrumentation volume of a workload.
    """

    recording = True

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._epoch = clock()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.events: list[EventRecord] = []
        self.ops = 0
        self._stack: list[int] = []

    def _now(self) -> float:
        return self._clock() - self._epoch

    # ------------------------------------------------------------------
    def span_start(self, name: str, attrs: Mapping[str, Any] | None = None) -> int:
        self.ops += 1
        index = len(self.spans)
        parent = self._stack[-1] if self._stack else None
        self.spans.append(
            SpanRecord(index, name, parent, self._now(), attrs=dict(attrs or {}))
        )
        self._stack.append(index)
        return index

    def span_end(self, index: int, attrs: Mapping[str, Any] | None = None) -> None:
        self.ops += 1
        record = self.spans[index]
        if attrs:
            record.attrs.update(attrs)
        record.end = self._now()
        # tolerate out-of-order ends: unwind to (and including) this span
        while self._stack:
            top = self._stack.pop()
            if top == index:
                break

    def add(self, name: str, value: float = 1) -> None:
        self.ops += 1
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.ops += 1
        self.gauges[name] = value

    def event(self, name: str, attrs: Mapping[str, Any] | None = None) -> None:
        self.ops += 1
        self.events.append(EventRecord(name, self._now(), dict(attrs or {})))

    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        """Freeze the current state (open spans keep ``end=None``)."""
        spans = tuple(
            SpanRecord(s.index, s.name, s.parent, s.start, s.end, dict(s.attrs))
            for s in self.spans
        )
        return MetricsSnapshot(
            spans=spans,
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            events=tuple(self.events),
        )


class ThreadSafeCollector(MetricsCollector):
    """A :class:`MetricsCollector` whose mutations are lock-protected.

    The plain collector observes one single-threaded run; the serve layer
    (:mod:`repro.serve`) instead runs jobs on worker threads that all
    report into the server's one collector, where the unlocked
    read-modify-write of ``add`` would drop increments.  Spans remain
    meaningful only per-thread (concurrent spans interleave in one
    stack), so threaded callers should stick to counters, gauges, and
    events — which is all the serve layer emits.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        super().__init__(clock)
        self._lock = threading.Lock()

    def add(self, name: str, value: float = 1) -> None:
        with self._lock:
            super().add(name, value)

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            super().gauge(name, value)

    def event(self, name: str, attrs: Mapping[str, Any] | None = None) -> None:
        with self._lock:
            super().event(name, attrs)

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return super().snapshot()


# ----------------------------------------------------------------------
# the module-level current collector and the instrumentation facade
# ----------------------------------------------------------------------
_collector: Collector = NULL


def current_collector() -> Collector:
    """The collector receiving telemetry right now (default: :data:`NULL`)."""
    return _collector


def set_collector(collector: Collector) -> Collector:
    """Install *collector* globally; returns the previous one."""
    global _collector
    previous = _collector
    _collector = collector
    return previous


@contextmanager
def use_collector(
    collector: MetricsCollector | None = None,
) -> Iterator[MetricsCollector]:
    """Scope a recording collector: installed on entry, restored on exit.

    Creates a fresh :class:`MetricsCollector` when none is given.
    """
    active = collector if collector is not None else MetricsCollector()
    previous = set_collector(active)
    try:
        yield active
    finally:
        set_collector(previous)


class _NoopSpan:
    """Shared do-nothing span handle returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Span:
    """Live span handle: context manager plus late attribute setting."""

    __slots__ = ("_collector", "_index")

    def __init__(self, collector: MetricsCollector, index: int) -> None:
        self._collector = collector
        self._index = index

    def __enter__(self) -> "_Span":
        return self

    def __exit__(self, *exc: object) -> bool:
        self._collector.span_end(self._index)
        return False

    def set(self, **attrs: Any) -> None:
        self._collector.spans[self._index].attrs.update(attrs)


SpanHandle = Union[_NoopSpan, _Span]


def span(name: str, **attrs: Any) -> SpanHandle:
    """Open a span under the current collector.

    Usage::

        with obs.span("safety_phase", service=name) as sp:
            ...
            sp.set(states=len(states))

    With the null collector this returns a shared no-op handle without
    allocating anything.
    """
    collector = _collector
    if not collector.recording:
        return _NOOP_SPAN
    return _Span(collector, collector.span_start(name, attrs))


def add(name: str, value: float = 1) -> None:
    """Increment counter *name* by *value* on the current collector."""
    collector = _collector
    if collector.recording:
        collector.add(name, value)


def gauge(name: str, value: float) -> None:
    """Set gauge *name* to *value* on the current collector."""
    collector = _collector
    if collector.recording:
        collector.gauge(name, value)


def event(name: str, **attrs: Any) -> None:
    """Record instant event *name* on the current collector."""
    collector = _collector
    if collector.recording:
        collector.event(name, attrs)


def snapshot_if_recording() -> MetricsSnapshot | None:
    """The current collector's snapshot, or ``None`` when not recording."""
    collector = _collector
    if isinstance(collector, MetricsCollector):
        return collector.snapshot()
    return None
