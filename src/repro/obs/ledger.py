"""The run ledger: a persistent, append-only record of every run.

Where :mod:`repro.obs.core` observes a single process and dies with it,
the ledger is the *flight recorder across processes*: one schema-versioned
record per solve / resilience / analyze / bench run, keyed by the same
SHA-256 fingerprints the checkpoint layer computes
(:func:`~repro.persist.checkpoint.problem_fingerprint`,
``CompiledSpec.content_hash``), so runs of the same problem are
comparable across sessions — and the future quotient-as-a-service layer
gets its cache index for free.

Unlike the rest of :mod:`repro.obs`, this module deliberately builds on
:mod:`repro.persist.store` (one-directional — persist never imports it):
the ledger file is the same atomic, integrity-checked envelope as a
checkpoint (tmp file + fsync + ``os.replace``, previous-good ``.prev``
rotation), so a crash mid-append can never tear the ledger — the old
contents survive intact.  Appends rewrite the whole document; "append
only" is a semantic property (existing records are never mutated, only
``gc`` drops whole records).

Record determinism policy (mirrors the bench output hygiene rule): the
``work`` counters are deterministic exploration counts and are what
``history diff`` compares; ``wall_time_s`` / ``created_at`` are
machine-dependent, live only in the JSON, and are **never diffed**.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Mapping

from ..errors import PersistError
from ..persist.store import read_envelope, write_envelope
from .core import add as _count

__all__ = [
    "LEDGER_SCHEMA",
    "RECORD_SCHEMA",
    "Ledger",
    "RunRecord",
    "WorkDiff",
    "diff_records",
    "flatten_work",
]

#: Version of the ledger document body.
LEDGER_SCHEMA = 1

#: Version of one run record.
RECORD_SCHEMA = 1

#: Run outcomes a record may carry.  ``failed`` is written only by the
#: serve layer (a job that exhausted its retries or hit a hard error);
#: CLI runs surface hard errors as exit codes instead of records.
OUTCOMES = ("complete", "partial-budget", "partial-interrupt", "failed")

_RECORD_KEYS = frozenset(
    {
        "schema",
        "run_id",
        "kind",
        "fingerprint",
        "label",
        "outcome",
        "verdict",
        "work",
        "phases",
        "wall_time_s",
        "created_at",
        "artifacts",
    }
)


@dataclass(frozen=True)
class RunRecord:
    """One ledger entry: what a run was and how much work it did.

    ``work`` is a flat name → number map of *deterministic* counters
    (pairs explored, states materialized, cells computed ...) — the part
    ``history diff`` compares.  ``phases`` is the run's nested phase
    counters, informational.  ``wall_time_s`` / ``created_at`` are
    machine-dependent and excluded from all diffs.
    """

    kind: str
    fingerprint: str
    label: str = ""
    outcome: str = "complete"
    verdict: str | None = None
    work: Mapping[str, float] = field(default_factory=dict)
    phases: Mapping[str, Any] = field(default_factory=dict)
    wall_time_s: float | None = None
    created_at: float | None = None
    artifacts: Mapping[str, str] = field(default_factory=dict)
    run_id: int = 0
    schema: int = RECORD_SCHEMA

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(
                f"outcome must be one of {OUTCOMES}, got {self.outcome!r}"
            )

    def to_json_dict(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "label": self.label,
            "outcome": self.outcome,
            "verdict": self.verdict,
            "work": {k: self.work[k] for k in sorted(self.work)},
            "phases": dict(self.phases),
            "wall_time_s": self.wall_time_s,
            "created_at": self.created_at,
            "artifacts": {k: self.artifacts[k] for k in sorted(self.artifacts)},
        }

    @classmethod
    def from_json_dict(cls, doc: dict) -> "RunRecord":
        if not isinstance(doc, dict):
            raise PersistError(f"ledger record is not an object: {doc!r}")
        unknown = sorted(set(doc) - _RECORD_KEYS)
        if unknown:
            raise PersistError(
                f"ledger record carries unknown field(s) {unknown} — "
                "written by a newer schema?"
            )
        if doc.get("schema") != RECORD_SCHEMA:
            raise PersistError(
                f"ledger record has unsupported schema {doc.get('schema')!r} "
                f"(this version reads {RECORD_SCHEMA})"
            )
        for key in ("run_id", "kind", "fingerprint", "outcome"):
            if key not in doc:
                raise PersistError(f"ledger record is missing {key!r}")
        try:
            return cls(
                kind=doc["kind"],
                fingerprint=doc["fingerprint"],
                label=doc.get("label", ""),
                outcome=doc["outcome"],
                verdict=doc.get("verdict"),
                work=dict(doc.get("work") or {}),
                phases=dict(doc.get("phases") or {}),
                wall_time_s=doc.get("wall_time_s"),
                created_at=doc.get("created_at"),
                artifacts=dict(doc.get("artifacts") or {}),
                run_id=doc["run_id"],
            )
        except (TypeError, ValueError) as exc:
            raise PersistError(f"malformed ledger record: {exc}") from exc


def flatten_work(counters: Mapping[str, Any], prefix: str = "") -> dict[str, float]:
    """Flatten nested phase counters into the diffable ``work`` map.

    Keeps numeric scalars under dotted keys, counts lists (a rounds list
    becomes ``progress.rounds.count``), and drops everything
    machine-dependent or non-numeric: booleans, strings, ``None``, and
    any key ending in ``_s`` / ``_ms`` (wall times are never diffed).
    """
    flat: dict[str, float] = {}
    for key, value in counters.items():
        name = f"{prefix}{key}"
        if key.endswith(("_s", "_ms")):
            continue
        if isinstance(value, bool) or value is None or isinstance(value, str):
            continue
        if isinstance(value, Mapping):
            flat.update(flatten_work(value, prefix=f"{name}."))
        elif isinstance(value, (list, tuple)):
            flat[f"{name}.count"] = len(value)
        elif isinstance(value, (int, float)):
            flat[name] = value
    return flat


# ----------------------------------------------------------------------
# the ledger document
# ----------------------------------------------------------------------
class Ledger:
    """An append-only run ledger at *path* (created on first append)."""

    def __init__(self, path: str) -> None:
        self.path = path

    # -- reading -------------------------------------------------------
    def _body(self) -> dict:
        try:
            body = read_envelope(self.path, kind="ledger")
        except PersistError as exc:
            if "no ledger at" in str(exc):
                return {"kind": "ledger", "schema": LEDGER_SCHEMA,
                        "next_id": 1, "entries": []}
            raise
        if body.get("kind") != "ledger":
            raise PersistError(
                f"{self.path!r} is not a ledger "
                f"(kind {body.get('kind')!r})"
            )
        if body.get("schema") != LEDGER_SCHEMA:
            raise PersistError(
                f"ledger {self.path!r} has unsupported schema "
                f"{body.get('schema')!r} (this version reads {LEDGER_SCHEMA})"
            )
        if not isinstance(body.get("entries"), list):
            raise PersistError(f"ledger {self.path!r} entries is not a list")
        return body

    def read(self) -> tuple[RunRecord, ...]:
        """All records, oldest first ([] when the file does not exist)."""
        return tuple(
            RunRecord.from_json_dict(doc) for doc in self._body()["entries"]
        )

    def get(self, run_id: int) -> RunRecord:
        for record in self.read():
            if record.run_id == run_id:
                return record
        raise PersistError(
            f"ledger {self.path!r} has no run {run_id!r} "
            f"(use 'history list' to see runs)"
        )

    def runs_of(
        self, fingerprint: str, *, kind: str | None = None
    ) -> tuple[RunRecord, ...]:
        """Records with this fingerprint (oldest first)."""
        return tuple(
            r
            for r in self.read()
            if r.fingerprint == fingerprint
            and (kind is None or r.kind == kind)
        )

    # -- writing -------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Durably append *record*, assigning the next run id.

        The rewrite is atomic and the previous ledger survives as
        ``.prev`` until the next append — a simulated crash mid-append
        leaves every existing record readable.
        """
        body = self._body()
        stamped = replace(record, run_id=int(body["next_id"]))
        body["entries"].append(stamped.to_json_dict())
        body["next_id"] = stamped.run_id + 1
        write_envelope(self.path, body, kind="ledger")
        _count("ledger.appends", 1)
        return stamped

    def gc(self, *, keep: int = 5) -> int:
        """Drop all but the newest *keep* records per (fingerprint, kind).

        Returns the number of records removed; the rewrite is atomic.
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep!r}")
        body = self._body()
        records = [RunRecord.from_json_dict(doc) for doc in body["entries"]]
        survivors_rev: list[RunRecord] = []
        seen: dict[tuple[str, str], int] = {}
        for record in reversed(records):
            group = (record.fingerprint, record.kind)
            if seen.get(group, 0) < keep:
                seen[group] = seen.get(group, 0) + 1
                survivors_rev.append(record)
        removed = len(records) - len(survivors_rev)
        if removed:
            body["entries"] = [
                r.to_json_dict() for r in reversed(survivors_rev)
            ]
            write_envelope(self.path, body, kind="ledger")
            _count("ledger.gc_removed", removed)
        return removed


def append_run(
    path: str,
    *,
    kind: str,
    fingerprint: str,
    label: str = "",
    outcome: str = "complete",
    verdict: str | None = None,
    work: Mapping[str, float] | None = None,
    phases: Mapping[str, Any] | None = None,
    wall_time_s: float | None = None,
    artifacts: Mapping[str, str] | None = None,
) -> RunRecord:
    """One-call convenience: append a stamped record to the ledger at *path*."""
    return Ledger(path).append(
        RunRecord(
            kind=kind,
            fingerprint=fingerprint,
            label=label,
            outcome=outcome,
            verdict=verdict,
            work=dict(work or {}),
            phases=dict(phases or {}),
            wall_time_s=wall_time_s,
            created_at=time.time(),
            artifacts=dict(artifacts or {}),
        )
    )


# ----------------------------------------------------------------------
# history diffing: deterministic work counters only
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkDiff:
    """The comparison of two runs' deterministic work counters.

    ``rows`` is ``(counter, base, new, regressed)`` per counter in either
    record (``None`` marks a counter one side lacks).  A counter regresses
    when its new value exceeds the base by more than *threshold* (a
    relative fraction; 0 means any increase).  Wall times never appear
    here by construction (:func:`flatten_work` drops them at record time).
    """

    base: RunRecord
    new: RunRecord
    threshold: float
    rows: tuple[tuple[str, float | None, float | None, bool], ...]

    @property
    def regressions(self) -> tuple[tuple[str, float | None, float | None], ...]:
        return tuple((n, b, v) for n, b, v, bad in self.rows if bad)

    @property
    def regressed(self) -> bool:
        return bool(self.regressions)

    def to_json_dict(self) -> dict:
        return {
            "base_run": self.base.run_id,
            "new_run": self.new.run_id,
            "fingerprint": self.base.fingerprint,
            "threshold": self.threshold,
            "regressed": self.regressed,
            "counters": [
                {"name": n, "base": b, "new": v, "regressed": bad}
                for n, b, v, bad in self.rows
            ],
        }

    def render_text(self) -> str:
        lines = [
            f"history diff: run {self.base.run_id} -> run {self.new.run_id} "
            f"({self.base.kind}, fingerprint {self.base.fingerprint[:12]}..., "
            f"threshold {self.threshold:g})"
        ]
        width = max((len(n) for n, *_ in self.rows), default=0)
        for name, base, new, bad in self.rows:
            mark = " REGRESSED" if bad else ""
            base_s = "-" if base is None else f"{base:g}"
            new_s = "-" if new is None else f"{new:g}"
            lines.append(f"  {name:<{width}s}  {base_s} -> {new_s}{mark}")
        lines.append(
            f"verdict: {len(self.regressions)} regressed counter(s)"
            if self.regressed
            else "verdict: no work regression"
        )
        return "\n".join(lines)


def diff_records(
    base: RunRecord, new: RunRecord, *, threshold: float = 0.0
) -> WorkDiff:
    """Compare deterministic work counters of two runs of one problem.

    Raises :class:`~repro.errors.PersistError` when the runs are not
    comparable (different fingerprints or kinds) — diffing unrelated runs
    would only produce noise.
    """
    if base.fingerprint != new.fingerprint:
        raise PersistError(
            f"runs {base.run_id} and {new.run_id} have different "
            f"fingerprints ({base.fingerprint[:12]}... vs "
            f"{new.fingerprint[:12]}...); history diff compares runs of "
            "the same problem"
        )
    if base.kind != new.kind:
        raise PersistError(
            f"runs {base.run_id} ({base.kind}) and {new.run_id} "
            f"({new.kind}) are different kinds of run"
        )
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold!r}")
    rows: list[tuple[str, float | None, float | None, bool]] = []
    for name in sorted(set(base.work) | set(new.work)):
        b = base.work.get(name)
        v = new.work.get(name)
        regressed = (
            b is not None
            and v is not None
            and v > b
            and (b == 0 or (v - b) / b > threshold)
        )
        rows.append((name, b, v, regressed))
    return WorkDiff(base=base, new=new, threshold=threshold, rows=tuple(rows))


def render_history_list(records: Iterable[RunRecord]) -> str:
    """The ``history list`` table (oldest first)."""
    records = list(records)
    if not records:
        return "(ledger is empty)"
    rows = [
        (
            str(r.run_id),
            r.kind,
            r.fingerprint[:12],
            r.outcome,
            r.verdict if r.verdict is not None else "-",
            r.label,
        )
        for r in records
    ]
    headers = ("run", "kind", "fingerprint", "outcome", "verdict", "label")
    widths = [
        max(len(headers[i]), max(len(row[i]) for row in rows))
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    ]
    for row in rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)
