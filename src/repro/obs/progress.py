"""Live progress streaming: rate-limited heartbeats from the charge path.

Long quotient solves (Pachl's reachability wall) can run for minutes;
this module turns the once-per-completed-work-unit charge points of
:class:`~repro.quotient.budget.BudgetMeter` into a low-overhead progress
stream.  Like the rest of :mod:`repro.obs` it is **zero-dependency and
standalone** — the meter is duck-typed (anything with ``phase``,
``pairs``, ``states``, ``elapsed()`` and a ``budget`` carrying
``to_json_dict()``), so this module imports nothing from the rest of
:mod:`repro`.

Design
------
A thread-local *current reporter* mirrors the current-collector design of
:mod:`repro.obs.core`: when a :class:`ProgressReporter` is installed
(usually via :func:`use_reporter`), ``make_meter`` creates a meter even
for unbudgeted runs and the meter calls :meth:`ProgressReporter.tick`
once per charge.  The hot path is one integer compare per charge; the
wall clock is read only every ``probe_every`` charges, and a heartbeat is
emitted only when ``interval_s`` has passed since the last one.  The
clock is injectable so tests drive emission deterministically.

Two sinks, both optional:

* ``jsonl`` — one JSON object per line (the schema below), for machines;
* ``human`` — a one-line status per heartbeat, for a terminal (stderr).

Neither sink is ever stdout, and the reporter only *observes* the meter's
counters — solver outputs are byte-identical with progress on or off
(pinned by a differential test).

Stream schema (``v`` 1), one object per line::

    {"v": 1, "event": "phase", "phase": "safety"}
    {"v": 1, "event": "heartbeat", "phase": "safety", "pairs": 120,
     "states": 64, "frontier": 7, "elapsed_s": 1.5, "pairs_per_s": 80.0,
     "states_per_s": 42.7, "budget_fraction": 0.12}
    {"v": 1, "event": "checkpoint", "path": "run.ckpt", "phase": "safety"}
    {"v": 1, "event": "note", ...}          # caller-provided context
    {"v": 1, "event": "done", "outcome": "complete"}

``elapsed_s`` and the rates are wall-clock derived and therefore
machine-dependent: they live only in this stream (and the ledger's
JSON-only fields), never in diffed solver output.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Protocol, TextIO

__all__ = [
    "PROGRESS_STREAM_VERSION",
    "ProgressReporter",
    "current_reporter",
    "set_reporter",
    "use_reporter",
]

#: Version of the JSON-lines stream schema.
PROGRESS_STREAM_VERSION = 1

#: Charges between wall-clock probes (same idea as TIME_CHECK_INTERVAL).
DEFAULT_PROBE_EVERY = 64


class MeterLike(Protocol):  # pragma: no cover - typing only
    phase: str
    pairs: int
    states: int

    def elapsed(self) -> float: ...


class ProgressReporter:
    """Streams rate-limited heartbeats from budget-charge boundaries.

    Parameters
    ----------
    jsonl:
        Text stream receiving one JSON object per line (or ``None``).
    human:
        Text stream receiving a one-line status per heartbeat (or
        ``None``).  Both sinks may be active at once.
    interval_s:
        Minimum seconds between heartbeats (0 emits on every probe).
    probe_every:
        Charges between clock reads; bounds the hot-path cost.
    clock:
        Injectable monotonic clock for deterministic tests.
    limits:
        The run's budget limits (``Budget.to_json_dict()`` shape) used to
        derive ``budget_fraction``; ``None`` when unbudgeted.
    """

    def __init__(
        self,
        *,
        jsonl: TextIO | None = None,
        human: TextIO | None = None,
        interval_s: float = 0.5,
        probe_every: int = DEFAULT_PROBE_EVERY,
        clock: Callable[[], float] = time.monotonic,
        limits: dict | None = None,
    ) -> None:
        if probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {probe_every!r}")
        self._jsonl = jsonl
        self._human = human
        self.interval_s = interval_s
        self.probe_every = probe_every
        self._clock = clock
        self.limits = dict(limits) if limits else None
        self.heartbeats = 0
        self._charges = 0
        self._next_probe = 1
        self._started = clock()
        self._last_emit = self._started - max(interval_s, 0.0)
        self._last_pairs = 0
        self._last_states = 0
        self._phase: str | None = None
        self._context: dict[str, Any] = {}
        self._finished = False

    # ------------------------------------------------------------------
    # emission plumbing
    # ------------------------------------------------------------------
    def _write(self, payload: dict, human_line: str | None) -> None:
        if self._jsonl is not None:
            self._jsonl.write(
                json.dumps(payload, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            self._jsonl.flush()
        if self._human is not None and human_line is not None:
            self._human.write(human_line + "\n")
            self._human.flush()

    def _payload(self, event: str, **fields: Any) -> dict:
        payload: dict[str, Any] = {
            "v": PROGRESS_STREAM_VERSION,
            "event": event,
        }
        payload.update(self._context)
        payload.update(fields)
        return payload

    def budget_fraction(self, pairs: int, states: int) -> float | None:
        """The most-consumed budget dimension in [0, 1], or ``None``."""
        limits = self.limits
        if not limits:
            return None
        fractions = []
        if limits.get("max_pairs"):
            fractions.append(pairs / limits["max_pairs"])
        if limits.get("max_states"):
            fractions.append(states / limits["max_states"])
        if limits.get("wall_time_s"):
            fractions.append(
                (self._clock() - self._started) / limits["wall_time_s"]
            )
        if not fractions:
            return None
        return round(min(max(fractions), 1.0), 4)

    # ------------------------------------------------------------------
    # the hooks (called from the charge path and the persist layer)
    # ------------------------------------------------------------------
    def tick(self, meter: "MeterLike", frontier: int = 0) -> None:
        """One completed unit of work; emits when the interval elapsed.

        Called by :meth:`BudgetMeter.charge` after its counters are
        updated.  Phase transitions emit immediately (not rate-limited),
        so short phases are still visible in the stream.
        """
        if meter.phase != self._phase:
            self._phase = meter.phase
            self._write(
                self._payload("phase", phase=meter.phase),
                f"[{meter.phase}] phase started",
            )
        self._charges += 1
        if self._charges < self._next_probe:
            return
        self._next_probe = self._charges + self.probe_every
        now = self._clock()
        if now - self._last_emit < self.interval_s:
            return
        self._emit_heartbeat(meter, frontier, now)

    def _emit_heartbeat(
        self, meter: "MeterLike", frontier: int, now: float
    ) -> None:
        dt = now - self._last_emit
        pairs_per_s = (meter.pairs - self._last_pairs) / dt if dt > 0 else 0.0
        states_per_s = (meter.states - self._last_states) / dt if dt > 0 else 0.0
        self._last_emit = now
        self._last_pairs = meter.pairs
        self._last_states = meter.states
        self.heartbeats += 1
        fraction = self.budget_fraction(meter.pairs, meter.states)
        elapsed = round(now - self._started, 3)
        payload = self._payload(
            "heartbeat",
            phase=meter.phase,
            pairs=meter.pairs,
            states=meter.states,
            frontier=frontier,
            elapsed_s=elapsed,
            pairs_per_s=round(pairs_per_s, 1),
            states_per_s=round(states_per_s, 1),
        )
        if fraction is not None:
            payload["budget_fraction"] = fraction
        status = (
            f"[{meter.phase}] {meter.pairs} pairs, {meter.states} states, "
            f"frontier {frontier}, {states_per_s:.0f} states/s"
        )
        if fraction is not None:
            status += f", budget {fraction:.0%}"
        self._write(payload, status)

    def checkpoint_written(self, path: str) -> None:
        """A durable checkpoint landed at *path* (never rate-limited)."""
        self._write(
            self._payload("checkpoint", path=path, phase=self._phase),
            f"[{self._phase or '-'}] checkpoint written to {path}",
        )

    def note(self, **fields: Any) -> None:
        """Merge *fields* into subsequent events and emit a note now.

        Sweeps use this to label which cell the following heartbeats
        belong to (``note(cell="loss@2", cell_index=3, cells=10)``).
        """
        self._context.update(fields)
        detail = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
        self._write(self._payload("note"), f"[note] {detail}")

    def finish(self, outcome: str) -> None:
        """Terminal event: ``complete`` / ``partial-budget`` / ....

        Idempotent: only the first call emits, so a command can report a
        specific outcome on an early-exit path while its surrounding
        scope still calls ``finish("complete")`` unconditionally.
        """
        if self._finished:
            return
        self._finished = True
        elapsed = round(self._clock() - self._started, 3)
        self._write(
            self._payload("done", outcome=outcome, elapsed_s=elapsed),
            f"[done] {outcome} after {elapsed}s "
            f"({self.heartbeats} heartbeat(s))",
        )


# ----------------------------------------------------------------------
# the current reporter (mirrors core's current collector, but per-thread)
# ----------------------------------------------------------------------
# Thread-local rather than module-global: the serve layer
# (:mod:`repro.serve`) runs one job per worker thread, each with its own
# reporter streaming into that job's status buffer; a global would
# cross-wire heartbeats between concurrent jobs.  Single-threaded callers
# (the CLI, the test suite) see exactly the old semantics, and the
# parallel kernel is unaffected because its workers are *processes*.
_reporters = threading.local()


def current_reporter() -> ProgressReporter | None:
    """The reporter receiving progress on this thread (default ``None``)."""
    return getattr(_reporters, "value", None)


def set_reporter(reporter: ProgressReporter | None) -> ProgressReporter | None:
    """Install *reporter* for this thread; returns the previous one."""
    previous = getattr(_reporters, "value", None)
    _reporters.value = reporter
    return previous


@contextmanager
def use_reporter(reporter: ProgressReporter) -> Iterator[ProgressReporter]:
    """Scope a progress reporter: installed on entry, restored on exit."""
    previous = set_reporter(reporter)
    try:
        yield reporter
    finally:
        set_reporter(previous)
