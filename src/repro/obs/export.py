"""Exporters for :class:`~repro.obs.core.MetricsSnapshot`.

Three renderings, all pure functions of the snapshot:

* :func:`render_text` — a human-readable span tree (durations in ms,
  attributes inline) followed by the counter/gauge tables; what the CLI's
  ``--profile`` flag prints;
* :func:`snapshot_to_dict` / :func:`snapshot_to_json` — a stable JSON
  structure (``version`` 1) for scripts and the benchmark harness;
* :func:`snapshot_to_chrome_trace` — the Chrome ``trace_event`` format
  (JSON-object flavour with a ``traceEvents`` list), loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev.  Spans become complete
  (``"ph": "X"``) events with microsecond timestamps; instant occurrences
  (budget trips, checkpoint writes, interrupts) become instant
  (``"ph": "i"``) events; counters and gauges become counter
  (``"ph": "C"``) events.

This module stays standalone like the rest of :mod:`repro.obs`: the
attribute encoder below is local, not imported from :mod:`repro.lint`.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .core import EventRecord, MetricsSnapshot, SpanRecord


def attr_safe(value: Any) -> Any:
    """Encode an arbitrary span attribute into JSON-stable structure.

    Tuples/lists/sets recurse (sets sorted for determinism); anything not
    JSON-representable falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [attr_safe(v) for v in value]
    if isinstance(value, (set, frozenset)):
        encoded = [attr_safe(v) for v in value]
        encoded.sort(key=lambda v: json.dumps(v, sort_keys=True))
        return encoded
    if isinstance(value, dict):
        return {
            str(k): attr_safe(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    return repr(value)


def _format_attrs(attrs: dict[str, Any]) -> str:
    if not attrs:
        return ""
    parts = [f"{k}={attr_safe(v)!r}" for k, v in sorted(attrs.items())]
    return "  [" + " ".join(parts) + "]"


def _format_ms(seconds: float) -> str:
    return f"{seconds * 1000.0:9.3f} ms"


def render_text(snapshot: "MetricsSnapshot") -> str:
    """The full text rendering: span tree plus counters and gauges."""
    lines: list[str] = []
    if snapshot.spans:
        lines.append("spans:")
        children: dict[int | None, list["SpanRecord"]] = {}
        for record in snapshot.spans:
            children.setdefault(record.parent, []).append(record)

        def walk(parent: int | None, prefix: str) -> None:
            siblings = children.get(parent, [])
            for pos, record in enumerate(siblings):
                last = pos == len(siblings) - 1
                connector = "`- " if last else "|- "
                open_marker = "" if record.end is not None else "  (open)"
                lines.append(
                    f"  {prefix}{connector}{record.name:<24s} "
                    f"{_format_ms(record.duration)}{open_marker}"
                    f"{_format_attrs(record.attrs)}"
                )
                walk(record.index, prefix + ("   " if last else "|  "))

        walk(None, "")
    if snapshot.events:
        lines.append("events:")
        for record in snapshot.events:
            lines.append(
                f"  @{_format_ms(record.ts).strip():>12s}  {record.name}"
                f"{_format_attrs(dict(record.attrs))}"
            )
    if snapshot.counters or snapshot.gauges:
        lines.append(render_metrics_text(snapshot))
    if not lines:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def render_metrics_text(snapshot: "MetricsSnapshot") -> str:
    """Only the counter/gauge tables (the ``--metrics text`` rendering)."""
    lines: list[str] = []
    if snapshot.counters:
        lines.append("counters:")
        width = max(len(name) for name in snapshot.counters)
        for name in sorted(snapshot.counters):
            lines.append(f"  {name:<{width}s}  {snapshot.counters[name]:g}")
    if snapshot.gauges:
        lines.append("gauges:")
        width = max(len(name) for name in snapshot.gauges)
        for name in sorted(snapshot.gauges):
            lines.append(f"  {name:<{width}s}  {snapshot.gauges[name]:g}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines)


def snapshot_to_dict(snapshot: "MetricsSnapshot") -> dict[str, Any]:
    """Stable JSON structure: spans flat (parent indices), metrics maps."""
    return {
        "version": 1,
        "spans": [
            {
                "index": s.index,
                "name": s.name,
                "parent": s.parent,
                "start_ms": round(s.start * 1000.0, 6),
                "duration_ms": round(s.duration * 1000.0, 6),
                "attrs": {k: attr_safe(v) for k, v in sorted(s.attrs.items())},
            }
            for s in snapshot.spans
        ],
        "counters": {k: snapshot.counters[k] for k in sorted(snapshot.counters)},
        "gauges": {k: snapshot.gauges[k] for k in sorted(snapshot.gauges)},
        "events": [
            {
                "name": e.name,
                "ts_ms": round(e.ts * 1000.0, 6),
                "attrs": {k: attr_safe(v) for k, v in sorted(e.attrs.items())},
            }
            for e in snapshot.events
        ],
    }


def snapshot_to_json(snapshot: "MetricsSnapshot", *, indent: int | None = 2) -> str:
    return json.dumps(snapshot_to_dict(snapshot), indent=indent, sort_keys=True)


def snapshot_to_chrome_trace(snapshot: "MetricsSnapshot") -> dict[str, Any]:
    """The Chrome ``trace_event`` JSON-object document for this snapshot.

    One process (pid 1), one thread (tid 1).  Spans are complete events
    (``ph: "X"``, ``ts``/``dur`` in integer microseconds); instant
    occurrences — budget trips, checkpoint writes, interrupts — are
    instant events (``ph: "i"``, global scope) so they show as vertical
    marks on the Perfetto timeline; counters and gauges are emitted as
    counter events (``ph: "C"``) at the end of the trace so the values
    show as tracks.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    end_ts = 0
    for s in snapshot.spans:
        ts = int(round(s.start * 1_000_000))
        dur = int(round(s.duration * 1_000_000))
        end_ts = max(end_ts, ts + dur)
        events.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "name": s.name,
                "cat": "repro",
                "ts": ts,
                "dur": dur,
                "args": {k: attr_safe(v) for k, v in sorted(s.attrs.items())},
            }
        )
    for e in snapshot.events:
        ts = int(round(e.ts * 1_000_000))
        end_ts = max(end_ts, ts)
        events.append(
            {
                "ph": "i",
                "pid": 1,
                "tid": 1,
                "name": e.name,
                "cat": "repro",
                "ts": ts,
                "s": "g",
                "args": {k: attr_safe(v) for k, v in sorted(e.attrs.items())},
            }
        )
    for name in sorted(snapshot.counters):
        events.append(
            {
                "ph": "C",
                "pid": 1,
                "tid": 1,
                "name": name,
                "ts": end_ts,
                "args": {"value": snapshot.counters[name]},
            }
        )
    for name in sorted(snapshot.gauges):
        events.append(
            {
                "ph": "C",
                "pid": 1,
                "tid": 1,
                "name": name,
                "ts": end_ts,
                "args": {"value": snapshot.gauges[name]},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(snapshot: "MetricsSnapshot", path: str) -> None:
    """Write the ``trace_event`` document to *path* (UTF-8 JSON)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot_to_chrome_trace(snapshot), fh, indent=2, sort_keys=True)
        fh.write("\n")
