"""repro.obs — zero-dependency observability for the quotient pipeline.

Spans (hierarchical wall-time intervals), counters, gauges, and instant
events, recorded by a pluggable collector and exported as a text tree,
JSON, or the Chrome ``trace_event`` format (``chrome://tracing`` /
Perfetto).

The default collector is a no-op, so instrumented code is effectively free
until a :class:`MetricsCollector` is installed::

    from repro import obs

    with obs.use_collector() as collector:
        solve_quotient(service, component)
    print(collector.snapshot().render_text())

Live progress streaming works the same way: install a
:class:`ProgressReporter` (:func:`use_reporter`) and the budget-charge
path emits rate-limited heartbeats while a solve runs (see
:mod:`repro.obs.progress`).

The persistent run ledger lives in :mod:`repro.obs.ledger`; import it
directly (``from repro.obs.ledger import Ledger``) — it builds on
:mod:`repro.persist` and is therefore not re-exported from this otherwise
standalone package.

See ``docs/observability.md`` for the full API, the metric name catalogue,
and how to read a solve trace.
"""

from .core import (
    NULL,
    Collector,
    EventRecord,
    MetricsCollector,
    MetricsSnapshot,
    NullCollector,
    SpanHandle,
    SpanRecord,
    ThreadSafeCollector,
    add,
    current_collector,
    event,
    gauge,
    set_collector,
    snapshot_if_recording,
    span,
    use_collector,
)
from .export import (
    attr_safe,
    render_metrics_text,
    render_text,
    snapshot_to_chrome_trace,
    snapshot_to_dict,
    snapshot_to_json,
    write_chrome_trace,
)
from .progress import (
    ProgressReporter,
    current_reporter,
    set_reporter,
    use_reporter,
)

__all__ = [
    "NULL",
    "Collector",
    "EventRecord",
    "MetricsCollector",
    "MetricsSnapshot",
    "NullCollector",
    "ProgressReporter",
    "SpanHandle",
    "SpanRecord",
    "ThreadSafeCollector",
    "add",
    "attr_safe",
    "current_collector",
    "current_reporter",
    "event",
    "gauge",
    "render_metrics_text",
    "render_text",
    "set_collector",
    "set_reporter",
    "snapshot_if_recording",
    "snapshot_to_chrome_trace",
    "snapshot_to_dict",
    "snapshot_to_json",
    "span",
    "use_collector",
    "use_reporter",
    "write_chrome_trace",
]
