"""repro.obs — zero-dependency observability for the quotient pipeline.

Spans (hierarchical wall-time intervals), counters, and gauges, recorded by
a pluggable collector and exported as a text tree, JSON, or the Chrome
``trace_event`` format (``chrome://tracing`` / Perfetto).

The default collector is a no-op, so instrumented code is effectively free
until a :class:`MetricsCollector` is installed::

    from repro import obs

    with obs.use_collector() as collector:
        solve_quotient(service, component)
    print(collector.snapshot().render_text())

See ``docs/observability.md`` for the full API, the metric name catalogue,
and how to read a solve trace.
"""

from .core import (
    NULL,
    Collector,
    MetricsCollector,
    MetricsSnapshot,
    NullCollector,
    SpanHandle,
    SpanRecord,
    add,
    current_collector,
    gauge,
    set_collector,
    snapshot_if_recording,
    span,
    use_collector,
)
from .export import (
    attr_safe,
    render_metrics_text,
    render_text,
    snapshot_to_chrome_trace,
    snapshot_to_dict,
    snapshot_to_json,
    write_chrome_trace,
)

__all__ = [
    "NULL",
    "Collector",
    "MetricsCollector",
    "MetricsSnapshot",
    "NullCollector",
    "SpanHandle",
    "SpanRecord",
    "add",
    "attr_safe",
    "current_collector",
    "gauge",
    "render_metrics_text",
    "render_text",
    "set_collector",
    "snapshot_if_recording",
    "snapshot_to_chrome_trace",
    "snapshot_to_dict",
    "snapshot_to_json",
    "span",
    "use_collector",
    "write_chrome_trace",
]
